"""Golden tests for the interprocedural lint layer.

Pins down the observable behaviour of :mod:`repro.quality.callgraph`
(module naming, aliased-import and method resolution, decorator
transparency, SCC ordering), :mod:`repro.quality.summaries` (per-function
boundary facts and the recursive must-release fixed point), the two
acceptance mutants (cross-function leak and escaped-generator draw — one
finding each *with* summaries, zero without), the ``kernel-contract``
rule against both its fixture twins and the real kernel module, the
sha-cone summary cache, and the ``--changed-only`` git-diff mode.
"""

from __future__ import annotations

import ast
import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.quality import lint_text, run_lint
from repro.quality.callgraph import build_call_graph, module_name_for
from repro.quality.kernel_contracts import KERNEL_CONTRACTS
from repro.quality.summaries import build_project, compute_summaries

DATA = Path(__file__).parent / "data" / "lint"
REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
BITSET = SRC / "repro" / "graphs" / "bitset.py"

HELPERS = DATA / "interproc_helpers.py"
GRAPH_FIXTURE = DATA / "interproc_graph.py"
LEAK_MUTANT = DATA / "interproc_leak_mutant.py"
RNG_MUTANT = DATA / "interproc_rng_mutant.py"
CLEAN = DATA / "interproc_clean.py"
CORPUS = [HELPERS, GRAPH_FIXTURE, LEAK_MUTANT, RNG_MUTANT, CLEAN]


def _parse(path: Path):
    return path, ast.parse(path.read_text()), str(path)


@pytest.fixture(scope="module")
def graph():
    return build_call_graph([_parse(p) for p in CORPUS])


@pytest.fixture(scope="module")
def summaries(graph):
    return compute_summaries(graph)


# --------------------------------------------------------------------------- #
# call graph
# --------------------------------------------------------------------------- #
class TestCallGraphGolden:
    def test_module_names_are_package_aware(self):
        assert module_name_for(HELPERS) == "interproc_helpers"
        assert module_name_for(BITSET) == "repro.graphs.bitset"

    def test_module_alias_calls_resolve(self, graph):
        callees = graph.edges["interproc_graph:use_alias"]
        assert "interproc_helpers:make_pool" in callees
        assert "interproc_helpers:close_pool" in callees

    def test_imported_class_staticmethod_resolves(self, graph):
        callees = graph.edges["interproc_graph:use_alias"]
        assert "interproc_helpers:Widget.offset" in callees

    def test_from_import_alias_resolves(self, graph):
        callees = graph.edges["interproc_graph:use_from_alias"]
        assert "interproc_helpers:draw_mean" in callees
        assert "interproc_helpers:Widget.default" in callees

    def test_self_method_call_resolves(self, graph):
        callees = graph.edges["interproc_helpers:Widget.area"]
        assert "interproc_helpers:Widget._scale" in callees

    def test_method_kinds(self, graph):
        fns = graph.functions
        assert fns["interproc_helpers:Widget.area"].kind == "method"
        assert fns["interproc_helpers:Widget.offset"].kind == "staticmethod"
        assert fns["interproc_helpers:Widget.default"].kind == "classmethod"

    def test_wraps_decorated_function_is_transparent(self, graph):
        assert graph.functions["interproc_helpers:draw_mean"].transparent

    def test_mutual_recursion_is_one_scc(self, graph):
        sccs = graph.sccs_bottom_up()
        ping_scc = next(c for c in sccs if "interproc_helpers:rec_ping" in c)
        assert set(ping_scc) == {
            "interproc_helpers:rec_ping",
            "interproc_helpers:rec_pong",
        }

    def test_sccs_are_callees_first(self, graph):
        sccs = graph.sccs_bottom_up()
        pos = {key: i for i, component in enumerate(sccs) for key in component}
        assert pos["interproc_helpers:make_pool"] < pos["interproc_leak_mutant:leaky"]
        assert pos["interproc_helpers:draw_mean"] < pos["interproc_rng_mutant:parent"]


# --------------------------------------------------------------------------- #
# summaries
# --------------------------------------------------------------------------- #
class TestSummariesGolden:
    def test_factory_returns_resource(self, summaries):
        summary = summaries["interproc_helpers:make_pool"]
        assert summary.trusted
        assert summary.returns_resource is not None
        desc, actions = summary.returns_resource
        assert "ThreadPoolExecutor" in desc
        assert actions == frozenset({"shutdown"})

    def test_releaser_discharges_its_parameter(self, summaries):
        summary = summaries["interproc_helpers:close_pool"]
        assert summary.releases == {0: frozenset({"shutdown"})}

    def test_decorated_callee_draw_is_visible(self, summaries):
        summary = summaries["interproc_helpers:draw_mean"]
        assert summary.trusted
        assert summary.draws == frozenset({0})

    def test_spawn_factory_is_recognised(self, summaries):
        assert summaries["interproc_helpers:spawn_child"].returns_spawn_rng

    def test_mutual_recursion_converges_to_must_release(self, summaries):
        for key in ("interproc_helpers:rec_ping", "interproc_helpers:rec_pong"):
            assert summaries[key].releases.get(0) == frozenset({"shutdown"}), key


# --------------------------------------------------------------------------- #
# the acceptance mutants: summaries on vs off
# --------------------------------------------------------------------------- #
class TestInterproceduralPrecision:
    def test_cross_function_leak_found_only_with_summaries(self):
        with_summaries = run_lint(
            [LEAK_MUTANT],
            rules=["resource-leak"],
            include_project=False,
            context_paths=[HELPERS],
        )
        assert len(with_summaries) == 1
        assert "returned by make_pool" in with_summaries[0].message
        without = run_lint(
            [LEAK_MUTANT],
            rules=["resource-leak"],
            include_project=False,
            use_summaries=False,
            context_paths=[HELPERS],
        )
        assert without == []

    def test_callee_draw_found_only_with_summaries(self):
        with_summaries = run_lint(
            [RNG_MUTANT],
            rules=["rng-discipline"],
            include_project=False,
            context_paths=[HELPERS],
        )
        assert len(with_summaries) == 1
        assert "draw_mean" in with_summaries[0].message
        without = run_lint(
            [RNG_MUTANT],
            rules=["rng-discipline"],
            include_project=False,
            use_summaries=False,
            context_paths=[HELPERS],
        )
        assert without == []

    def test_clean_twins_stay_clean(self):
        for use_summaries in (True, False):
            findings = run_lint(
                [CLEAN, HELPERS],
                rules=["resource-leak", "rng-discipline"],
                include_project=False,
                use_summaries=use_summaries,
            )
            assert findings == [], use_summaries


# --------------------------------------------------------------------------- #
# kernel-contract
# --------------------------------------------------------------------------- #
class TestKernelContract:
    def test_bad_fixture_fires_every_clause(self):
        findings = run_lint(
            [DATA / "bad_kernel_contract.py"],
            rules=["kernel-contract"],
            include_project=False,
        )
        assert len(findings) == 8
        fragments = [
            "no entry in the kernel-contract table",
            "floor division by the word size",
            "true division by the word size",
            "stale kernel contract",
            "arithmetic '+' on a packed uint64 row",
            "out= target 'reach' partially aliases",
            "in-place update of 'reach'",
            "complement of a packed row",
        ]
        messages = "\n".join(f.message for f in findings)
        for fragment in fragments:
            assert fragment in messages, fragment

    def test_allowed_twin_passes(self):
        findings = run_lint(
            [DATA / "allowed_kernel_contract.py"],
            rules=["kernel-contract"],
            include_project=False,
        )
        assert findings == []

    def test_rule_skips_files_outside_its_scope(self):
        assert lint_text("x = [1] + [2]\n", rules=["kernel-contract"]) == []

    def test_real_kernel_module_is_clean(self):
        findings = run_lint([BITSET], rules=["kernel-contract"], include_project=False)
        assert findings == []

    def test_warshall_pragma_is_load_bearing(self):
        src = BITSET.read_text().replace("# repro-lint: allow[kernel-contract]", "#")
        findings = lint_text(src, "bitset.py", rules=["kernel-contract"])
        assert len(findings) == 1
        assert "partially aliases" in findings[0].message

    def test_contract_table_matches_module_all(self):
        tree = ast.parse(BITSET.read_text())
        exported = None
        for node in tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                exported = {
                    e.value for e in node.value.elts if isinstance(e, ast.Constant)
                }
        assert exported == set(KERNEL_CONTRACTS)

    def test_call_sites_lint_clean(self):
        files = sorted((SRC / "repro").rglob("*.py"))
        findings = run_lint(files, rules=["kernel-contract"], include_project=False)
        assert findings == []


# --------------------------------------------------------------------------- #
# summary cache
# --------------------------------------------------------------------------- #
class TestSummaryCache:
    def _corpus(self, tmp_path):
        for src in (HELPERS, LEAK_MUTANT):
            shutil.copy(src, tmp_path / src.name)
        return tmp_path / HELPERS.name, tmp_path / LEAK_MUTANT.name

    def test_cache_round_trip_is_stable(self, tmp_path):
        helpers, mutant = self._corpus(tmp_path)
        cache = tmp_path / "summaries.json"
        first = run_lint(
            [mutant],
            rules=["resource-leak"],
            include_project=False,
            summary_cache=cache,
            context_paths=[helpers],
        )
        assert len(first) == 1
        payload = json.loads(cache.read_text())
        assert payload["version"] == 1
        entry = payload["files"][str(helpers)]
        assert "sha256" in entry and "deps" in entry and "summaries" in entry
        second = run_lint(
            [mutant],
            rules=["resource-leak"],
            include_project=False,
            summary_cache=cache,
            context_paths=[helpers],
        )
        assert [f.message for f in second] == [f.message for f in first]

    def test_editing_a_dep_invalidates_the_sha_cone(self, tmp_path):
        helpers, mutant = self._corpus(tmp_path)
        cache = tmp_path / "summaries.json"
        kwargs = dict(
            rules=["resource-leak"],
            include_project=False,
            summary_cache=cache,
            context_paths=[helpers],
        )
        assert len(run_lint([mutant], **kwargs)) == 1
        # Neuter the factory: it no longer hands back a live resource, so
        # a stale cached summary is the only way the finding could survive.
        text = helpers.read_text().replace(
            "    return ThreadPoolExecutor(max_workers=workers)", "    return None"
        )
        helpers.write_text(text)
        assert run_lint([mutant], **kwargs) == []

    def test_build_project_reports_cache_traffic(self, tmp_path):
        helpers, mutant = self._corpus(tmp_path)
        cache = tmp_path / "summaries.json"
        build_project([helpers, mutant], cache_path=cache)
        assert cache.exists()
        context = build_project([helpers, mutant], cache_path=cache)
        resolver = context.resolver_for(str(mutant))
        assert resolver is not None


# --------------------------------------------------------------------------- #
# --changed-only
# --------------------------------------------------------------------------- #
class TestChangedOnly:
    def _run(self, cwd, *args):
        code = (
            "import sys; from repro.quality.framework import main; "
            "sys.exit(main(sys.argv[1:]))"
        )
        return subprocess.run(
            [sys.executable, "-c", code, *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )

    def _git(self, cwd, *args):
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
            cwd=cwd,
            check=True,
            capture_output=True,
        )

    @pytest.fixture()
    def repo(self, tmp_path):
        self._git(tmp_path, "init", "-q", "-b", "main")
        (tmp_path / "clean.py").write_text("VALUE = 1\n")
        (tmp_path / "dirty.py").write_text("VALUE = 2\n")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        return tmp_path

    def test_no_changes_lints_nothing(self, repo):
        proc = self._run(repo, "--changed-only", ".")
        assert proc.returncode == 0, proc.stderr
        assert "no changed files" in proc.stdout

    def test_only_the_changed_file_is_linted(self, repo):
        (repo / "dirty.py").write_text("import random\nVALUE = random.random()\n")
        proc = self._run(repo, "--changed-only", ".")
        assert proc.returncode == 1, proc.stderr
        assert "dirty.py" in proc.stdout
        assert "clean.py" not in proc.stdout

    def test_untracked_files_count_as_changed(self, repo):
        (repo / "fresh.py").write_text("import random\nX = random.random()\n")
        proc = self._run(repo, "--changed-only", ".")
        assert proc.returncode == 1, proc.stderr
        assert "fresh.py" in proc.stdout

    def test_outside_git_falls_back_to_full_lint(self, tmp_path):
        (tmp_path / "dirty.py").write_text("import random\nX = random.random()\n")
        proc = self._run(tmp_path, "--changed-only", ".")
        assert proc.returncode == 1, proc.stderr
        assert "dirty.py" in proc.stdout
