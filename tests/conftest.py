"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_cycle() -> DynamicGraph:
    """A 12-node cycle: connected, sparse, minimum degree 2."""
    return generators.cycle_graph(12)


@pytest.fixture
def small_path() -> DynamicGraph:
    """A 10-node path: connected, minimum degree 1."""
    return generators.path_graph(10)


@pytest.fixture
def small_star() -> DynamicGraph:
    """A 9-node star: diameter 2, very uneven degrees."""
    return generators.star_graph(9)


@pytest.fixture
def small_digraph() -> DynamicDiGraph:
    """A 8-node directed cycle (strongly connected, out-degree 1)."""
    from repro.graphs import directed_generators

    return directed_generators.directed_cycle(8)
