"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pull import PullDiscovery
from repro.core.push import PushDiscovery
from repro.core.directed import DirectedTwoHopWalk
from repro.graphs import generators as gen
from repro.graphs import properties as props
from repro.graphs import validation
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs.closure import transitive_closure_edges
from repro.simulation import stats

# Hypothesis settings: keep examples small so the whole suite stays fast.
FAST = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
@st.composite
def edge_lists(draw, max_nodes=10, max_edges=25):
    """A random (n, edge-list) pair; edges may repeat and include self loops."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_edges,
        )
    )
    return n, edges


@st.composite
def connected_graphs(draw, min_nodes=3, max_nodes=10):
    """A random connected graph: a random tree plus random extra edges."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    parents = [draw(st.integers(0, v - 1)) for v in range(1, n)]
    extra = draw(
        st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=10)
    )
    g = DynamicGraph(n)
    for v, p in enumerate(parents, start=1):
        g.add_edge(p, v)
    for u, v in extra:
        if u != v:
            g.add_edge(u, v)
    return g


@st.composite
def directed_graphs(draw, min_nodes=2, max_nodes=8):
    """A random weakly-connected digraph built from a random spanning arborescence."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    parents = [draw(st.integers(0, v - 1)) for v in range(1, n)]
    flips = [draw(st.booleans()) for _ in range(1, n)]
    extra = draw(
        st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=12)
    )
    g = DynamicDiGraph(n)
    for (v, p), flip in zip(enumerate(parents, start=1), flips):
        if flip:
            g.add_edge(v, p)
        else:
            g.add_edge(p, v)
    for u, v in extra:
        if u != v:
            g.add_edge(u, v)
    return g


# --------------------------------------------------------------------------- #
# adjacency invariants
# --------------------------------------------------------------------------- #
class TestGraphInvariants:
    @FAST
    @given(edge_lists())
    def test_graph_always_internally_consistent(self, n_edges):
        n, edges = n_edges
        g = DynamicGraph(n, edges)
        assert validation.check_graph_invariants(g) == []
        # degree sum equals twice the edge count (handshake lemma)
        assert int(g.degrees().sum()) == 2 * g.number_of_edges()

    @FAST
    @given(edge_lists())
    def test_digraph_always_internally_consistent(self, n_edges):
        n, edges = n_edges
        g = DynamicDiGraph(n, edges)
        assert validation.check_digraph_invariants(g) == []
        assert int(g.out_degrees().sum()) == g.number_of_edges()
        assert int(g.in_degrees().sum()) == g.number_of_edges()

    @FAST
    @given(edge_lists())
    def test_adjacency_matrix_roundtrip(self, n_edges):
        n, edges = n_edges
        g = DynamicGraph(n, edges)
        assert DynamicGraph.from_adjacency_matrix(g.adjacency_matrix()) == g


# --------------------------------------------------------------------------- #
# paper lemmas and structural properties
# --------------------------------------------------------------------------- #
class TestPaperInvariants:
    @FAST
    @given(connected_graphs())
    def test_lemma1_on_random_connected_graphs(self, g):
        for u in g.nodes():
            assert props.verify_lemma1(g, u)

    @FAST
    @given(connected_graphs())
    def test_neighborhoods_partition_reachable_nodes(self, g):
        u = 0
        dist = props.bfs_distances(g, u)
        max_d = int(dist.max())
        union = set()
        for i in range(1, max_d + 1):
            layer = props.neighborhood_at_distance(g, u, i)
            assert layer.isdisjoint(union)
            union |= layer
        assert union == set(range(g.n)) - {u}


# --------------------------------------------------------------------------- #
# process invariants
# --------------------------------------------------------------------------- #
class TestProcessInvariants:
    @FAST
    @given(connected_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_push_preserves_validity_and_monotonicity(self, g, seed):
        proc = PushDiscovery(g, rng=seed)
        edges_before = g.number_of_edges()
        mind_before = g.min_degree()
        proc.run(15)
        assert validation.check_graph_invariants(g) == []
        assert g.number_of_edges() >= edges_before
        assert g.min_degree() >= mind_before

    @FAST
    @given(connected_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_pull_new_edges_connect_round_start_two_hop_pairs(self, g, seed):
        proc = PullDiscovery(g, rng=seed)
        snapshot = g.copy()
        result = proc.step()
        for u, w in result.added_edges:
            # w must be within two hops of u in the round-start graph
            assert w in props.neighborhood_within_distance(snapshot, u, 2)

    @FAST
    @given(connected_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_push_converges_on_small_graphs(self, g, seed):
        result = PushDiscovery(g, rng=seed).run_to_convergence()
        assert result.converged
        assert g.is_complete()

    @FAST
    @given(directed_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_directed_walk_reaches_exactly_the_closure(self, g, seed):
        target = transitive_closure_edges(g)
        initial = set(g.edges())
        proc = DirectedTwoHopWalk(g, rng=seed)
        result = proc.run_to_convergence()
        assert result.converged
        final = set(g.edges())
        # everything required is present, and nothing outside closure ∪ initial appears
        assert target <= final
        assert final <= (target | initial)


# --------------------------------------------------------------------------- #
# statistics
# --------------------------------------------------------------------------- #
class TestStatsProperties:
    @FAST
    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.2, max_value=2.5),
    )
    def test_power_law_fit_recovers_parameters(self, c, a):
        x = np.array([8.0, 16.0, 32.0, 64.0, 128.0])
        y = c * x ** a
        fit = stats.fit_power_law(x, y)
        assert fit.exponent == pytest.approx(a, rel=1e-6, abs=1e-6)
        assert fit.coefficient == pytest.approx(c, rel=1e-6)

    @FAST
    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.0, max_value=3.0),
    )
    def test_power_log_fit_recovers_log_exponent(self, c, b):
        x = np.array([16.0, 32.0, 64.0, 128.0, 256.0])
        y = c * x * np.log(x) ** b
        fit = stats.fit_power_log_law(x, y, poly_exponent=1.0)
        assert fit.log_exponent == pytest.approx(b, rel=1e-6, abs=1e-6)
