"""Unit tests for the message-passing substrate (messages, nodes, protocols, simulator)."""

import numpy as np
import pytest

from repro.core.push import PushDiscovery
from repro.graphs import generators as gen
from repro.network.failures import DropUniform, NoFailures
from repro.network.message import Message, MessageKind, id_bits_for
from repro.network.node import NetworkNode
from repro.network.simulator import NetworkSimulator


class TestMessage:
    def test_id_bits(self):
        assert id_bits_for(2) == 1
        assert id_bits_for(16) == 4
        assert id_bits_for(17) == 5
        assert id_bits_for(1) == 1

    def test_bits_accounting(self):
        msg = Message(MessageKind.INTRODUCE, 0, 1, (2,))
        assert msg.bits(16) == 4
        bulk = Message(MessageKind.KNOWLEDGE, 0, 1, tuple(range(10)))
        assert bulk.bits(16) == 40
        req = Message(MessageKind.PULL_REQUEST, 0, 1, ())
        assert req.bits(16) == 4  # empty payload still costs one ID

    def test_with_round(self):
        msg = Message(MessageKind.CONNECT, 0, 1, (0,))
        stamped = msg.with_round(7)
        assert stamped.round_index == 7
        assert stamped.kind is MessageKind.CONNECT


class TestNetworkNode:
    def test_initial_contacts(self):
        node = NetworkNode(3, [1, 2])
        assert node.degree() == 2
        assert node.knows(1) and node.knows(2)
        assert not node.knows(0)

    def test_add_contact_rules(self):
        node = NetworkNode(0)
        assert node.add_contact(1) is True
        assert node.add_contact(1) is False
        assert node.add_contact(0) is False  # never stores itself
        assert node.degree() == 1

    def test_random_contact(self, rng):
        node = NetworkNode(0, [1, 2, 3])
        seen = {node.random_contact(rng) for _ in range(100)}
        assert seen == {1, 2, 3}
        with pytest.raises(ValueError):
            NetworkNode(0).random_contact(rng)

    def test_random_contact_pair(self, rng):
        node = NetworkNode(0, [1, 2])
        v, w = node.random_contact_pair(rng)
        assert v in (1, 2) and w in (1, 2)


class TestFailureModels:
    def test_no_failures_always_delivers(self, rng):
        model = NoFailures()
        msg = Message(MessageKind.INTRODUCE, 0, 1, (2,))
        assert all(model.delivered(msg, rng) for _ in range(20))

    def test_drop_uniform_rate(self, rng):
        model = DropUniform(0.5)
        msg = Message(MessageKind.INTRODUCE, 0, 1, (2,))
        delivered = sum(model.delivered(msg, rng) for _ in range(2000))
        assert 850 < delivered < 1150
        with pytest.raises(ValueError):
            DropUniform(1.0)


class TestSimulator:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            NetworkSimulator(gen.cycle_graph(6), protocol="bogus")

    def test_requires_undirected_graph(self):
        from repro.graphs.adjacency import DynamicDiGraph

        with pytest.raises(TypeError):
            NetworkSimulator(DynamicDiGraph(3, [(0, 1)]))

    @pytest.mark.parametrize("protocol", ["push", "pull", "name_dropper"])
    def test_protocols_converge_to_full_discovery(self, protocol):
        sim = NetworkSimulator(gen.cycle_graph(10), protocol=protocol, rng=3)
        stats = sim.run_to_convergence(max_rounds=20_000)
        assert sim.is_converged()
        assert stats.rounds > 0
        assert stats.messages_delivered == stats.messages_sent  # no failures by default

    def test_contact_graph_matches_knowledge_graph(self):
        sim = NetworkSimulator(gen.cycle_graph(8), protocol="push", rng=1)
        for _ in range(20):
            sim.step()
        assert sim.contact_graph() == sim.knowledge_graph

    def test_contacts_stay_symmetric_under_push_and_pull(self):
        for protocol in ("push", "pull"):
            sim = NetworkSimulator(gen.path_graph(8), protocol=protocol, rng=2)
            for _ in range(30):
                sim.step()
            for node in sim.nodes:
                for c in node.contacts:
                    assert sim.nodes[c].knows(node.node_id)

    def test_push_protocol_matches_graph_process_exactly(self):
        """Same seed + same start graph -> identical evolution, round for round."""
        start = gen.cycle_graph(9)
        sim = NetworkSimulator(start.copy(), protocol="push", rng=np.random.default_rng(11))
        proc_graph = start.copy()
        proc = PushDiscovery(proc_graph, rng=np.random.default_rng(11))
        for _ in range(25):
            sim.step()
            proc.step()
            assert sim.contact_graph() == proc_graph

    def test_message_failures_are_counted(self):
        sim = NetworkSimulator(
            gen.cycle_graph(10), protocol="push", rng=4, failures=DropUniform(0.5)
        )
        for _ in range(10):
            sim.step()
        assert sim.stats.messages_dropped > 0
        assert (
            sim.stats.messages_delivered + sim.stats.messages_dropped
            == sim.stats.messages_sent
        )

    def test_push_per_node_bits_stay_logarithmic(self):
        n = 32
        sim = NetworkSimulator(gen.cycle_graph(n), protocol="push", rng=5)
        for _ in range(50):
            sim.step()
        # push: each node sends 2 messages of one ID each per round
        assert sim.max_bits_per_node_round() <= 2 * id_bits_for(n)

    def test_name_dropper_per_node_bits_grow(self):
        n = 32
        sim = NetworkSimulator(gen.cycle_graph(n), protocol="name_dropper", rng=5)
        sim.run_to_convergence(max_rounds=100)
        # once knowledge saturates, a single message carries ~n IDs
        assert sim.max_bits_per_node_round() > 5 * id_bits_for(n)

    def test_run_to_convergence_respects_cap(self):
        sim = NetworkSimulator(gen.cycle_graph(30), protocol="push", rng=0)
        stats = sim.run_to_convergence(max_rounds=3)
        assert stats.rounds == 3
        assert not sim.is_converged()
        with pytest.raises(ValueError):
            sim.run_to_convergence(max_rounds=-1)

    def test_repr(self):
        sim = NetworkSimulator(gen.cycle_graph(5), protocol="pull", rng=0)
        assert "pull" in repr(sim)
