"""Unit tests for the message-passing substrate (messages, nodes, protocols, simulator)."""

import numpy as np
import pytest

from repro.core.push import PushDiscovery
from repro.network.failures import DropUniform, FailureModel, NoFailures
from repro.network.message import LocalityError, Message, MessageKind, id_bits_for
from repro.network.node import NetworkNode
from repro.network.simulator import NetworkSimulator
from repro.graphs import generators as gen


class DropKind(FailureModel):
    """Test helper: drop every message of one kind, deliver the rest."""

    def __init__(self, kind: MessageKind) -> None:
        self.kind = kind

    def delivered(self, message: Message, rng: np.random.Generator) -> bool:
        return message.kind is not self.kind


class TestMessage:
    def test_id_bits(self):
        assert id_bits_for(2) == 1
        assert id_bits_for(16) == 4
        assert id_bits_for(17) == 5
        assert id_bits_for(1) == 1

    def test_bits_accounting(self):
        msg = Message(MessageKind.INTRODUCE, 0, 1, (2,))
        assert msg.bits(16) == 4
        bulk = Message(MessageKind.KNOWLEDGE, 0, 1, tuple(range(10)))
        assert bulk.bits(16) == 40
        req = Message(MessageKind.PULL_REQUEST, 0, 1, ())
        assert req.bits(16) == 4  # empty payload still costs one ID

    def test_with_round(self):
        msg = Message(MessageKind.CONNECT, 0, 1, (0,))
        stamped = msg.with_round(7)
        assert stamped.round_index == 7
        assert stamped.kind is MessageKind.CONNECT


class TestNetworkNode:
    def test_initial_contacts(self):
        node = NetworkNode(3, [1, 2])
        assert node.degree() == 2
        assert node.knows(1) and node.knows(2)
        assert not node.knows(0)

    def test_add_contact_rules(self):
        node = NetworkNode(0)
        assert node.add_contact(1) is True
        assert node.add_contact(1) is False
        assert node.add_contact(0) is False  # never stores itself
        assert node.degree() == 1

    def test_remove_contact(self):
        node = NetworkNode(0, [1, 2, 3])
        assert node.remove_contact(2) is True
        assert node.remove_contact(2) is False  # already gone
        assert list(node.contacts) == [1, 3]
        assert not node.knows(2)

    def test_random_contact(self, rng):
        node = NetworkNode(0, [1, 2, 3])
        seen = {node.random_contact(rng) for _ in range(100)}
        assert seen == {1, 2, 3}
        with pytest.raises(ValueError):
            NetworkNode(0).random_contact(rng)

    def test_random_contact_pair(self, rng):
        node = NetworkNode(0, [1, 2])
        v, w = node.random_contact_pair(rng)
        assert v in (1, 2) and w in (1, 2)


class TestFailureModels:
    def test_no_failures_always_delivers(self, rng):
        model = NoFailures()
        msg = Message(MessageKind.INTRODUCE, 0, 1, (2,))
        assert all(model.delivered(msg, rng) for _ in range(20))

    def test_drop_uniform_rate(self, rng):
        model = DropUniform(0.5)
        msg = Message(MessageKind.INTRODUCE, 0, 1, (2,))
        delivered = sum(model.delivered(msg, rng) for _ in range(2000))
        assert 850 < delivered < 1150
        with pytest.raises(ValueError):
            DropUniform(1.0)


class TestSimulator:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            NetworkSimulator(gen.cycle_graph(6), protocol="bogus")

    def test_requires_undirected_graph(self):
        from repro.graphs.adjacency import DynamicDiGraph

        with pytest.raises(TypeError):
            NetworkSimulator(DynamicDiGraph(3, [(0, 1)]))

    @pytest.mark.parametrize("protocol", ["push", "pull", "name_dropper"])
    def test_protocols_converge_to_full_discovery(self, protocol):
        sim = NetworkSimulator(gen.cycle_graph(10), protocol=protocol, rng=3)
        stats = sim.run_to_convergence(max_rounds=20_000)
        assert sim.is_converged()
        assert stats.rounds > 0
        assert stats.messages_delivered == stats.messages_sent  # no failures by default

    def test_contact_graph_matches_knowledge_graph(self):
        sim = NetworkSimulator(gen.cycle_graph(8), protocol="push", rng=1)
        for _ in range(20):
            sim.step()
        assert sim.contact_graph() == sim.knowledge_graph

    def test_contacts_stay_symmetric_under_push_and_pull(self):
        for protocol in ("push", "pull"):
            sim = NetworkSimulator(gen.path_graph(8), protocol=protocol, rng=2)
            for _ in range(30):
                sim.step()
            for node in sim.nodes:
                for c in node.contacts:
                    assert sim.nodes[c].knows(node.node_id)

    def test_push_protocol_matches_graph_process_exactly(self):
        """Same seed + same start graph -> identical evolution, round for round."""
        start = gen.cycle_graph(9)
        sim = NetworkSimulator(start.copy(), protocol="push", rng=np.random.default_rng(11))
        proc_graph = start.copy()
        proc = PushDiscovery(proc_graph, rng=np.random.default_rng(11))
        for _ in range(25):
            sim.step()
            proc.step()
            assert sim.contact_graph() == proc_graph

    def test_message_failures_are_counted(self):
        sim = NetworkSimulator(
            gen.cycle_graph(10), protocol="push", rng=4, failures=DropUniform(0.5)
        )
        for _ in range(10):
            sim.step()
        assert sim.stats.messages_dropped > 0
        assert (
            sim.stats.messages_delivered + sim.stats.messages_dropped
            == sim.stats.messages_sent
        )

    def test_push_per_node_bits_stay_logarithmic(self):
        n = 32
        sim = NetworkSimulator(gen.cycle_graph(n), protocol="push", rng=5)
        for _ in range(50):
            sim.step()
        # push: each node sends 2 messages of one ID each per round
        assert sim.max_bits_per_node_round() <= 2 * id_bits_for(n)

    def test_name_dropper_per_node_bits_grow(self):
        n = 32
        sim = NetworkSimulator(gen.cycle_graph(n), protocol="name_dropper", rng=5)
        sim.run_to_convergence(max_rounds=100)
        # once knowledge saturates, a single message carries ~n IDs
        assert sim.max_bits_per_node_round() > 5 * id_bits_for(n)

    def test_run_to_convergence_respects_cap(self):
        sim = NetworkSimulator(gen.cycle_graph(30), protocol="push", rng=0)
        stats = sim.run_to_convergence(max_rounds=3)
        assert stats.rounds == 3
        assert not sim.is_converged()
        with pytest.raises(ValueError):
            sim.run_to_convergence(max_rounds=-1)

    def test_repr(self):
        sim = NetworkSimulator(gen.cycle_graph(5), protocol="pull", rng=0)
        assert "pull" in repr(sim)


class TestPullReplyRetention:
    """Regression: the requester keeps an ID handed by a delivered PULL_REPLY.

    The old implementation recorded the discovery at *both* endpoints only
    when the follow-up CONNECT was delivered, so dropping CONNECTs made
    the requester forget knowledge it had already received.
    """

    def test_requester_records_reply_even_when_connect_dropped(self):
        sim = NetworkSimulator(
            gen.cycle_graph(12),
            protocol="pull",
            rng=7,
            failures=DropKind(MessageKind.CONNECT),
        )
        for _ in range(30):
            sim.step()
        # Replies were delivered, so requesters must have learned new IDs
        # even though every CONNECT was lost (before the fix: zero
        # discoveries, every contact list still the initial one).
        assert sim.stats.discoveries > 0
        assert any(node.degree() > 2 for node in sim.nodes)

    def test_discovered_node_only_learns_via_connect(self):
        """The CONNECT keeps its one job: informing the discovered node."""
        sim = NetworkSimulator(
            gen.cycle_graph(12),
            protocol="pull",
            rng=7,
            failures=DropKind(MessageKind.PULL_REPLY),
        )
        for _ in range(30):
            sim.step()
        # No reply ever arrives, so no requester learns anything and no
        # CONNECT is ever sent: the whole process stalls.
        assert sim.stats.discoveries == 0
        assert all(node.degree() == 2 for node in sim.nodes)

    def test_no_failures_trajectory_unchanged_by_fix(self):
        """Under NoFailures the fix is invisible: same per-round evolution."""
        a = NetworkSimulator(gen.cycle_graph(10), protocol="pull", rng=21)
        b = NetworkSimulator(gen.cycle_graph(10), protocol="pull", rng=21)
        for _ in range(15):
            a.step()
            b.step()
            assert a.contact_graph() == b.contact_graph()
        assert a.stats.discoveries == b.stats.discoveries


class TestPerNodeBitAccounting:
    """Regression: max_bits_per_node_round reports the busiest *node*."""

    def test_true_max_differs_from_round_average(self):
        # Star: round 1 of Name Dropper has the centre ship n IDs while
        # every leaf ships 2, so the true per-node max is ~n IDs but the
        # per-node average is ~3.  The old implementation returned the
        # average under the max's name.
        n = 16
        sim = NetworkSimulator(gen.star_graph(n), protocol="name_dropper", rng=0)
        sim.step()
        id_bits = id_bits_for(n)
        assert sim.max_bits_per_node_round() == n * id_bits
        assert sim.max_round_mean_bits_per_node() <= 4 * id_bits
        assert sim.max_bits_per_node_round() > sim.max_round_mean_bits_per_node()

    def test_per_round_max_node_bits_tracked(self):
        sim = NetworkSimulator(gen.cycle_graph(8), protocol="push", rng=1)
        for _ in range(5):
            sim.step()
        assert len(sim.stats.per_round_max_node_bits) == 5
        assert max(sim.stats.per_round_max_node_bits) == sim.max_bits_per_node_round()
        # push: nobody ever sends more than two one-ID messages per round.
        assert sim.max_bits_per_node_round() <= 2 * id_bits_for(8)

    def test_empty_simulation_reports_zero(self):
        sim = NetworkSimulator(gen.cycle_graph(8), protocol="push", rng=1)
        assert sim.max_bits_per_node_round() == 0
        assert sim.max_round_mean_bits_per_node() == 0


class TestPerCallRoundBudget:
    """Regression: run_to_convergence's max_rounds is a per-call budget."""

    def test_two_consecutive_calls_each_get_the_budget(self):
        sim = NetworkSimulator(gen.cycle_graph(30), protocol="push", rng=0)
        sim.run_to_convergence(max_rounds=3)
        assert sim.stats.rounds == 3
        # Before the fix this second call compared against the cumulative
        # stats.rounds and silently ran zero rounds.
        sim.run_to_convergence(max_rounds=3)
        assert sim.stats.rounds == 6
        assert not sim.is_converged()

    def test_budget_still_stops_at_convergence(self):
        sim = NetworkSimulator(gen.cycle_graph(8), protocol="name_dropper", rng=2)
        sim.run_to_convergence(max_rounds=10_000)
        rounds = sim.stats.rounds
        assert sim.is_converged()
        sim.run_to_convergence(max_rounds=10_000)
        assert sim.stats.rounds == rounds  # converged: no further rounds


class TestLocalityEnforcement:
    """The simulator rejects sends to IDs the sender was never handed."""

    def test_non_local_send_rejected(self):
        sim = NetworkSimulator(gen.path_graph(6), protocol="push", rng=0)
        stranger = Message(MessageKind.INTRODUCE, 0, 5, (3,))
        with pytest.raises(LocalityError):
            sim.send(stranger)
        # Nothing was accounted for the rejected message.
        assert sim.stats.messages_sent == 0

    def test_local_send_accepted(self):
        sim = NetworkSimulator(gen.path_graph(6), protocol="push", rng=0)
        assert sim.send(Message(MessageKind.INTRODUCE, 0, 1, (2,))) is True
        assert sim.stats.messages_sent == 1

    def test_protocols_never_violate_locality(self):
        # Every protocol's full message flow stays within the rule — the
        # pull CONNECT (addressed to a node learned this round) included.
        for protocol in ("push", "pull", "name_dropper"):
            sim = NetworkSimulator(
                gen.cycle_graph(12), protocol=protocol, rng=3, failures=DropUniform(0.3)
            )
            for _ in range(40):
                sim.step()
