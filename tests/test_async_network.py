"""Tests for the asynchronous event-driven simulator (events, faults, equivalence).

The load-bearing property: in the degenerate configuration (constant
latency below the tick interval, no churn, no partitions, ``NoFailures``)
the async engine must reproduce the synchronous ``NetworkSimulator``
discovery trajectory *draw for draw* — same contact graphs after every
round, same RNG state at the end.  Everything else (jitter, drops, churn,
partitions, pings) degrades gracefully from that baseline.
"""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.network import (
    AsyncNetworkSimulator,
    ChurnSchedule,
    DropUniform,
    EventKind,
    EventQueue,
    ExponentialLatency,
    FixedLatency,
    LocalityError,
    Message,
    MessageKind,
    NetworkSimulator,
    PartitionSchedule,
    UniformLatency,
)


# --------------------------------------------------------------------------- #
# event primitives
# --------------------------------------------------------------------------- #
class TestEventQueue:
    def test_orders_by_time_then_insertion(self):
        q = EventQueue()
        q.push(2.0, EventKind.TICK, "late")
        q.push(1.0, EventKind.TICK, "early-first")
        q.push(1.0, EventKind.TICK, "early-second")
        assert [q.pop().data for _ in range(3)] == [
            "early-first",
            "early-second",
            "late",
        ]

    def test_seq_is_monotonic_across_pops(self):
        q = EventQueue()
        first = q.push(1.0, EventKind.TICK)
        q.pop()
        second = q.push(0.5, EventKind.TICK)
        assert second.seq > first.seq

    def test_rejects_bad_times(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1.0, EventKind.TICK)
        with pytest.raises(ValueError):
            q.push(float("nan"), EventKind.TICK)


class TestLatencyModels:
    def test_fixed_latency_draws_nothing(self):
        rng = np.random.default_rng(0)
        state_before = rng.bit_generator.state
        assert FixedLatency(0.25).sample(None, rng) == 0.25
        assert rng.bit_generator.state == state_before

    def test_uniform_latency_within_bounds(self, rng):
        model = UniformLatency(0.1, 0.9)
        samples = [model.sample(None, rng) for _ in range(200)]
        assert all(0.1 <= s <= 0.9 for s in samples)
        assert len(set(samples)) > 1

    def test_exponential_latency_above_base(self, rng):
        model = ExponentialLatency(0.5, base=0.2)
        assert all(model.sample(None, rng) >= 0.2 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedLatency(-0.1)
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)
        with pytest.raises(ValueError):
            ExponentialLatency(0.0)


class TestSchedules:
    def test_churn_entries_sorted_and_validated(self):
        sched = ChurnSchedule([(5.0, "join", 1), (2.0, "leave", 1)])
        assert [e.kind for e in sched.entries] == ["leave", "join"]
        with pytest.raises(ValueError):
            ChurnSchedule([(1.0, "explode", 0)])
        with pytest.raises(ValueError):
            ChurnSchedule([(-1.0, "leave", 0)])

    def test_poisson_churn_is_seed_deterministic(self):
        a = ChurnSchedule.poisson(20, 0.3, 50.0, seed=11, downtime=4.0)
        b = ChurnSchedule.poisson(20, 0.3, 50.0, seed=11, downtime=4.0)
        assert a.entries == b.entries
        assert len(a) > 0
        # Every leave is paired with a join downtime later.
        leaves = [e for e in a.entries if e.kind == "leave"]
        joins = {(e.time, e.node) for e in a.entries if e.kind == "join"}
        assert all((e.time + 4.0, e.node) in joins for e in leaves)

    def test_zero_rate_churn_is_empty(self):
        assert len(ChurnSchedule.poisson(10, 0.0, 100.0, seed=1)) == 0

    def test_partition_split_heal(self):
        sched = PartitionSchedule.split_heal(1.0, 5.0, [[0, 1], [2, 3]])
        assert len(sched) == 2
        assert sched.entries[0].groups == ((0, 1), (2, 3))
        assert sched.entries[1].groups is None
        with pytest.raises(ValueError):
            PartitionSchedule.split_heal(5.0, 1.0, [[0], [1]])


# --------------------------------------------------------------------------- #
# degenerate equivalence with the synchronous engine
# --------------------------------------------------------------------------- #
class TestSynchronousEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 17])
    def test_async_push_replays_synchronous_trajectory(self, seed):
        """Zero jitter + no churn + NoFailures: tick r == round r, draw for draw."""
        sync = NetworkSimulator(
            gen.cycle_graph(14), protocol="push", rng=np.random.default_rng(seed)
        )
        asyn = AsyncNetworkSimulator(
            gen.cycle_graph(14),
            protocol="push",
            rng=np.random.default_rng(seed),
            latency=FixedLatency(0.5),
        )
        for _ in range(20):
            sync.step()
            asyn.run_ticks(1)
            assert sync.contact_graph() == asyn.contact_graph()
        # Not merely the same graphs: the identical random stream.
        assert sync.rng.bit_generator.state == asyn.rng.bit_generator.state
        assert sync.stats.messages_sent == asyn.stats.messages_sent
        assert sync.stats.discoveries == asyn.stats.discoveries

    @pytest.mark.parametrize("protocol,latency", [("pull", 0.25), ("name_dropper", 0.5)])
    def test_other_protocols_replay_too(self, protocol, latency):
        # Pull rounds are three hops deep, so the degenerate latency must
        # fit three deliveries inside one tick.
        sync = NetworkSimulator(
            gen.cycle_graph(12), protocol=protocol, rng=np.random.default_rng(5)
        )
        asyn = AsyncNetworkSimulator(
            gen.cycle_graph(12),
            protocol=protocol,
            rng=np.random.default_rng(5),
            latency=FixedLatency(latency),
        )
        for _ in range(12):
            sync.step()
            asyn.run_ticks(1)
            assert sync.contact_graph() == asyn.contact_graph()
        assert sync.rng.bit_generator.state == asyn.rng.bit_generator.state

    def test_jitter_breaks_round_alignment_but_still_converges(self):
        asyn = AsyncNetworkSimulator(
            gen.cycle_graph(12),
            protocol="push",
            rng=1,
            latency=UniformLatency(0.1, 2.5),
        )
        asyn.run_to_convergence(max_ticks=5_000)
        assert asyn.is_converged()


class TestEventDeterminism:
    def _build(self, seed):
        return AsyncNetworkSimulator(
            gen.cycle_graph(16),
            protocol="pull",
            rng=seed,
            failures=DropUniform(0.15),
            latency=UniformLatency(0.05, 1.4),
            churn=ChurnSchedule.poisson(16, 0.1, 30.0, seed=99, downtime=3.0),
            ping_interval=1.0,
            ping_timeout=2.0,
            record_events=True,
        )

    def test_same_seed_same_event_log(self):
        a, b = self._build(8), self._build(8)
        a.run_ticks(30)
        b.run_ticks(30)
        assert a.event_log == b.event_log
        assert a.contact_graph() == b.contact_graph()

    def test_different_seed_different_event_log(self):
        a, b = self._build(8), self._build(9)
        a.run_ticks(30)
        b.run_ticks(30)
        assert a.event_log != b.event_log


# --------------------------------------------------------------------------- #
# faults: churn, partitions, liveness eviction, locality
# --------------------------------------------------------------------------- #
class TestChurn:
    def test_messages_to_dead_nodes_are_lost(self):
        sim = AsyncNetworkSimulator(
            gen.cycle_graph(10),
            protocol="push",
            rng=2,
            churn=ChurnSchedule([(2.0, "leave", 3)]),
        )
        sim.run_ticks(20)
        assert not sim.is_alive(3)
        assert sim.stats.leaves == 1
        assert sim.stats.messages_lost_dead > 0
        # The dead node's own state froze at departure.
        assert sim.nodes[3].degree() < sim.n - 1

    def test_rejoin_resumes_participation(self):
        sim = AsyncNetworkSimulator(
            gen.cycle_graph(10),
            protocol="push",
            rng=2,
            churn=ChurnSchedule([(2.0, "leave", 3), (6.0, "join", 3)]),
        )
        sim.run_to_convergence(max_ticks=2_000)
        assert sim.is_alive(3)
        assert sim.stats.joins == 1
        assert sim.is_converged()  # the returning node catches up

    def test_convergence_is_judged_among_alive_nodes(self):
        sim = AsyncNetworkSimulator(
            gen.cycle_graph(10),
            protocol="push",
            rng=2,
            churn=ChurnSchedule([(1.0, "leave", 0)]),
        )
        sim.run_to_convergence(max_ticks=2_000)
        assert sim.is_converged()
        assert sim.alive_nodes() == list(range(1, 10))

    def test_per_call_tick_budget(self):
        sim = AsyncNetworkSimulator(gen.cycle_graph(30), protocol="push", rng=0)
        sim.run_to_convergence(max_ticks=3)
        assert sim.stats.ticks == 3
        sim.run_to_convergence(max_ticks=3)
        assert sim.stats.ticks == 6
        with pytest.raises(ValueError):
            sim.run_to_convergence(max_ticks=-1)


class TestPartitions:
    def test_partition_isolates_interiors_until_heal(self):
        n = 16
        sim = AsyncNetworkSimulator(
            gen.cycle_graph(n),
            protocol="push",
            rng=4,
            partitions=PartitionSchedule.split_heal(0.0, 25.0, [range(8), range(8, 16)]),
        )
        sim.run_ticks(24)
        assert sim.stats.messages_lost_partition > 0
        # Interior nodes (no cycle edge across the cut) cannot learn
        # interior nodes of the other side while the cut holds; boundary
        # IDs may travel via same-side introducers, which is fine.
        interiors_a, interiors_b = range(2, 6), range(10, 14)
        for u in interiors_a:
            for v in interiors_b:
                assert not sim.nodes[u].knows(v)
                assert not sim.nodes[v].knows(u)

    def test_discovery_completes_after_heal(self):
        sim = AsyncNetworkSimulator(
            gen.cycle_graph(12),
            protocol="push",
            rng=4,
            partitions=PartitionSchedule.split_heal(0.0, 10.0, [range(6), range(6, 12)]),
        )
        sim.run_to_convergence(max_ticks=5_000)
        assert sim.is_converged()


class TestLivenessEviction:
    def test_dead_contact_is_evicted_after_consecutive_misses(self):
        # Two nodes: 1 dies, 0 pings it every tick and must evict it after
        # ping_misses unanswered probes.
        sim = AsyncNetworkSimulator(
            gen.path_graph(2),
            protocol="push",
            rng=0,
            churn=ChurnSchedule([(1.5, "leave", 1)]),
            ping_interval=1.0,
            ping_timeout=1.5,
            ping_misses=3,
        )
        sim.run_ticks(12)
        assert not sim.nodes[0].knows(1)
        assert sim.stats.evictions == 1
        assert sim.stats.pings_sent > 0

    def test_alive_contacts_survive_reliable_pings(self):
        sim = AsyncNetworkSimulator(
            gen.cycle_graph(8),
            protocol="push",
            rng=1,
            ping_interval=1.0,
            ping_timeout=1.5,
        )
        sim.run_ticks(30)
        assert sim.stats.evictions == 0
        assert sim.stats.pongs_received > 0

    def test_single_miss_does_not_evict_under_loss(self):
        # 30% loss with a 4-miss threshold: false evictions should be
        # rare; the protocol keeps converging.
        sim = AsyncNetworkSimulator(
            gen.cycle_graph(10),
            protocol="push",
            rng=6,
            failures=DropUniform(0.3),
            ping_interval=1.0,
            ping_timeout=1.5,
            ping_misses=4,
        )
        sim.run_to_convergence(max_ticks=3_000)
        assert sim.is_converged()

    def test_ping_validation(self):
        with pytest.raises(ValueError):
            AsyncNetworkSimulator(gen.cycle_graph(4), ping_interval=0.0)
        with pytest.raises(ValueError):
            AsyncNetworkSimulator(gen.cycle_graph(4), ping_interval=1.0, ping_misses=0)


class TestAsyncLocality:
    def test_non_local_send_rejected(self):
        sim = AsyncNetworkSimulator(gen.path_graph(6), protocol="push", rng=0)
        with pytest.raises(LocalityError):
            sim.send(Message(MessageKind.INTRODUCE, 0, 5, (3,)))
        assert sim.stats.messages_sent == 0

    def test_heard_of_extends_locality(self):
        # After 1 introduces 3 to 0, node 0 may address 3 directly.
        sim = AsyncNetworkSimulator(
            gen.path_graph(6), protocol="push", rng=0, latency=FixedLatency(0.1)
        )
        sim.send(Message(MessageKind.INTRODUCE, 1, 0, (3,)))
        sim.run_ticks(1)
        assert sim.send(Message(MessageKind.INTRODUCE, 0, 3, (1,))) is True

    def test_faulty_protocol_runs_never_violate_locality(self):
        for protocol in ("push", "pull", "name_dropper"):
            sim = AsyncNetworkSimulator(
                gen.cycle_graph(12),
                protocol=protocol,
                rng=3,
                failures=DropUniform(0.3),
                latency=UniformLatency(0.05, 1.8),
                churn=ChurnSchedule.poisson(12, 0.1, 20.0, seed=5, downtime=3.0),
                ping_interval=1.0,
            )
            sim.run_ticks(25)


class TestAsyncMisc:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            AsyncNetworkSimulator(gen.cycle_graph(6), protocol="bogus")

    def test_requires_undirected_graph(self):
        from repro.graphs.adjacency import DynamicDiGraph

        with pytest.raises(TypeError):
            AsyncNetworkSimulator(DynamicDiGraph(3, [(0, 1)]))

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncNetworkSimulator(gen.cycle_graph(4), tick_interval=0.0)
        with pytest.raises(ValueError):
            AsyncNetworkSimulator(
                gen.cycle_graph(4), churn=ChurnSchedule([(1.0, "leave", 9)])
            )
        sim = AsyncNetworkSimulator(gen.cycle_graph(4))
        with pytest.raises(ValueError):
            sim.run_ticks(-1)

    def test_knowledge_graph_tracks_discoveries(self):
        sim = AsyncNetworkSimulator(gen.cycle_graph(10), protocol="push", rng=1)
        sim.run_to_convergence(max_ticks=2_000)
        assert sim.contact_graph() == sim.knowledge_graph

    def test_repr(self):
        sim = AsyncNetworkSimulator(gen.cycle_graph(5), protocol="pull", rng=0)
        assert "pull" in repr(sim)
        sim.run_ticks(2)
        assert "ticks=2" in repr(sim)
