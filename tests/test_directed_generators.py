"""Unit tests for the directed graph generators and the paper's constructions."""

import pytest

from repro.graphs import directed_generators as dgen
from repro.graphs import properties as props
from repro.graphs.closure import transitive_closure_edges


class TestDeterministicDirectedFamilies:
    def test_directed_path(self):
        g = dgen.directed_path(5)
        assert g.number_of_edges() == 4
        assert g.out_degree(0) == 1 and g.out_degree(4) == 0
        assert props.is_weakly_connected(g)
        assert not props.is_strongly_connected(g)

    def test_directed_cycle(self):
        g = dgen.directed_cycle(6)
        assert g.number_of_edges() == 6
        assert props.is_strongly_connected(g)
        with pytest.raises(ValueError):
            dgen.directed_cycle(1)

    def test_complete_digraph(self):
        g = dgen.complete_digraph(4)
        assert g.number_of_edges() == 12
        assert props.is_strongly_connected(g)

    def test_bidirected_path_cycle_star(self):
        p = dgen.bidirected_path(4)
        assert p.number_of_edges() == 6
        assert props.is_strongly_connected(p)
        c = dgen.bidirected_cycle(5)
        assert c.number_of_edges() == 10
        assert props.is_strongly_connected(c)
        s = dgen.bidirected_star(5)
        assert s.number_of_edges() == 8
        assert props.is_strongly_connected(s)

    def test_layered_dag(self):
        g = dgen.layered_dag(3, 2)
        assert g.n == 6
        assert g.number_of_edges() == 2 * 4
        assert props.is_weakly_connected(g)
        assert not props.is_strongly_connected(g)


class TestRandomDirectedFamilies:
    def test_random_digraph(self, rng):
        g = dgen.random_digraph(15, 0.2, rng)
        assert g.n == 15
        assert all(not g.has_edge(u, u) for u in g.nodes())
        with pytest.raises(ValueError):
            dgen.random_digraph(5, -0.1, rng)

    def test_random_strongly_connected(self, rng):
        g = dgen.random_strongly_connected_digraph(20, 0.05, rng)
        assert props.is_strongly_connected(g)

    def test_random_tournament(self, rng):
        g = dgen.random_tournament(8, rng)
        assert g.number_of_edges() == 8 * 7 // 2
        for u in range(8):
            for v in range(u + 1, 8):
                assert g.has_edge(u, v) != g.has_edge(v, u)


class TestPaperDirectedConstructions:
    def test_thm14_structure(self):
        n = 16
        g = dgen.thm14_weak_lower_bound(n)
        assert g.n == n
        assert props.is_weakly_connected(g)
        assert not props.is_strongly_connected(g)
        # chain edges present, shortcuts absent
        for i in range(n // 4):
            assert g.has_edge(3 * i, 3 * i + 1)
            assert g.has_edge(3 * i + 1, 3 * i + 2)
            assert not g.has_edge(3 * i, 3 * i + 2)
            for j in range(3 * n // 4, n):
                assert g.has_edge(3 * i, j)
                assert g.has_edge(3 * i + 1, j)

    def test_thm14_missing_edges_match_closure_deficit(self):
        n = 16
        g = dgen.thm14_weak_lower_bound(n)
        closure = transitive_closure_edges(g)
        deficit = sorted(e for e in closure if not g.has_edge(*e))
        assert deficit == sorted(dgen.thm14_missing_edges(n))

    def test_thm14_rejects_bad_n(self):
        with pytest.raises(ValueError):
            dgen.thm14_weak_lower_bound(10)
        with pytest.raises(ValueError):
            dgen.thm14_weak_lower_bound(4)

    def test_thm15_structure(self):
        n = 12
        g = dgen.thm15_strong_lower_bound(n)
        half = n // 2
        assert props.is_strongly_connected(g)
        # complete digraph on the first half
        for i in range(half):
            for j in range(half):
                if i != j:
                    assert g.has_edge(i, j)
        # forward path through the second half
        for i in range(half - 1, n - 1):
            assert g.has_edge(i, i + 1)
        # back edges from second half to all lower-indexed nodes
        for i in range(half, n):
            for j in range(i):
                assert g.has_edge(i, j)
        # forward shortcut edges (i, i+2) for i >= half-1 are absent initially
        assert not g.has_edge(half - 1, half + 1)

    def test_thm15_out_degree_at_least_half(self):
        g = dgen.thm15_strong_lower_bound(12)
        assert int(g.out_degrees().min()) >= 12 // 2 - 1

    def test_thm15_rejects_bad_n(self):
        with pytest.raises(ValueError):
            dgen.thm15_strong_lower_bound(7)
        with pytest.raises(ValueError):
            dgen.thm15_strong_lower_bound(2)


class TestDirectedRegistry:
    @pytest.mark.parametrize("name", dgen.directed_family_names())
    def test_every_family_builds(self, name, rng):
        g = dgen.make_directed_family(name, 16, rng)
        assert g.n >= 8
        assert g.number_of_edges() > 0

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            dgen.make_directed_family("nope", 8)
