"""Unit tests for graph property computations (the paper's Table 1 quantities)."""

import pytest

from repro.graphs import generators as gen
from repro.graphs import properties as props
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph


class TestDistances:
    def test_bfs_distances_path(self):
        g = gen.path_graph(5)
        dist = props.bfs_distances(g, 0)
        assert dist.tolist() == [0, 1, 2, 3, 4]

    def test_bfs_distances_unreachable(self):
        g = DynamicGraph(4, [(0, 1)])
        dist = props.bfs_distances(g, 0)
        assert dist[1] == 1 and dist[2] == -1 and dist[3] == -1

    def test_bfs_directed_follows_out_edges(self):
        g = DynamicDiGraph(3, [(0, 1), (1, 2)])
        assert props.bfs_distances(g, 0).tolist() == [0, 1, 2]
        assert props.bfs_distances(g, 2).tolist() == [-1, -1, 0]

    def test_neighborhood_at_distance(self):
        g = gen.path_graph(6)
        assert props.neighborhood_at_distance(g, 0, 2) == {2}
        assert props.neighborhood_at_distance(g, 2, 1) == {1, 3}
        assert props.neighborhood_at_distance(g, 0, 0) == {0}
        with pytest.raises(ValueError):
            props.neighborhood_at_distance(g, 0, -1)

    def test_neighborhood_within_distance(self):
        g = gen.path_graph(6)
        assert props.neighborhood_within_distance(g, 0, 3) == {1, 2, 3}
        assert props.neighborhood_within_distance(g, 0, 0) == set()


class TestTies:
    def test_degree_into_set(self):
        g = gen.star_graph(5)
        assert props.degree_into_set(g, 0, {1, 2, 3}) == 3
        assert props.degree_into_set(g, 1, {2, 3}) == 0

    def test_strongly_weakly_tied(self):
        g = gen.complete_graph(6)
        target = {0, 1, 2}
        # node 5 has 3 edges into {0,1,2}; with delta0 = 5, threshold is 2.5
        assert props.is_strongly_tied(g, 5, target, delta0=5)
        assert not props.is_weakly_tied(g, 5, target, delta0=5)
        # with delta0 = 8, threshold 4 > 3 edges
        assert props.is_weakly_tied(g, 5, target, delta0=8)


class TestConnectivity:
    def test_is_connected(self):
        assert props.is_connected(gen.cycle_graph(5))
        assert props.is_connected(DynamicGraph(1))
        assert not props.is_connected(DynamicGraph(3, [(0, 1)]))

    def test_connected_components(self):
        g = DynamicGraph(5, [(0, 1), (2, 3)])
        comps = props.connected_components(g)
        assert sorted(map(tuple, comps)) == [(0, 1), (2, 3), (4,)]

    def test_weak_strong_connectivity(self):
        path = DynamicDiGraph(3, [(0, 1), (1, 2)])
        assert props.is_weakly_connected(path)
        assert not props.is_strongly_connected(path)
        cycle = DynamicDiGraph(3, [(0, 1), (1, 2), (2, 0)])
        assert props.is_strongly_connected(cycle)
        assert props.is_strongly_connected(DynamicDiGraph(1))


class TestGlobalStats:
    def test_diameter_and_eccentricity(self):
        g = gen.path_graph(5)
        assert props.eccentricity(g, 0) == 4
        assert props.eccentricity(g, 2) == 2
        assert props.diameter(g) == 4
        assert props.diameter(gen.complete_graph(4)) == 1

    def test_diameter_disconnected_raises(self):
        with pytest.raises(ValueError):
            props.diameter(DynamicGraph(3, [(0, 1)]))
        with pytest.raises(ValueError):
            props.diameter(DynamicGraph(0))

    def test_average_degree(self):
        g = gen.cycle_graph(6)
        assert props.average_degree(g) == pytest.approx(2.0)
        assert props.average_degree(DynamicGraph(0)) == 0.0

    def test_degree_histogram(self):
        g = gen.star_graph(5)
        assert props.degree_histogram(g) == {1: 4, 4: 1}

    def test_clustering_coefficient(self):
        tri = gen.complete_graph(3)
        assert props.clustering_coefficient(tri, 0) == pytest.approx(1.0)
        path = gen.path_graph(3)
        assert props.clustering_coefficient(path, 1) == pytest.approx(0.0)
        assert props.clustering_coefficient(path, 0) == 0.0  # degree < 2

    def test_average_clustering(self):
        assert props.average_clustering(gen.complete_graph(4)) == pytest.approx(1.0)
        assert props.average_clustering(gen.cycle_graph(5)) == pytest.approx(0.0)
        assert props.average_clustering(DynamicGraph(0)) == 0.0

    def test_missing_edge_pairs(self):
        g = DynamicGraph(3, [(0, 1)])
        assert props.missing_edge_pairs(g) == [(0, 2), (1, 2)]
        assert props.missing_edge_pairs(gen.complete_graph(3)) == []


class TestLemma1:
    @pytest.mark.parametrize(
        "graph",
        [
            gen.cycle_graph(10),
            gen.path_graph(9),
            gen.star_graph(7),
            gen.complete_graph(6),
            gen.grid_graph(3, 3),
            gen.hypercube_graph(3),
            gen.lollipop_graph(4, 3),
        ],
    )
    def test_lemma1_holds_on_connected_graphs(self, graph):
        # Lemma 1: |N^1 ∪ N^2 ∪ N^3 ∪ N^4| >= min(2δ, n-1) for every node.
        for u in graph.nodes():
            assert props.verify_lemma1(graph, u)
