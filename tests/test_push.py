"""Unit tests for the push (triangulation) process."""

import numpy as np
import pytest

from repro.core.base import UpdateSemantics
from repro.core.push import PushDiscovery
from repro.graphs import generators as gen
from repro.graphs import validation
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph


class TestPushBasics:
    def test_requires_undirected_graph(self):
        with pytest.raises(TypeError):
            PushDiscovery(DynamicDiGraph(3, [(0, 1)]))

    def test_propose_returns_edge_between_neighbors(self, small_star, rng):
        proc = PushDiscovery(small_star, rng=rng)
        for _ in range(50):
            edge = proc.propose(0)
            if edge is None:
                continue
            v, w = edge
            assert small_star.has_edge(0, v)
            assert small_star.has_edge(0, w)
            assert v != w

    def test_degree_one_node_never_proposes(self, small_path, rng):
        proc = PushDiscovery(small_path, rng=rng)
        # Node 0 has a single neighbour: with replacement both draws coincide.
        assert proc.propose(0) is None

    def test_isolated_node_proposes_none(self, rng):
        g = DynamicGraph(3, [(1, 2)])
        proc = PushDiscovery(g, rng=rng)
        assert proc.propose(0) is None

    def test_without_replacement_always_distinct(self, rng):
        g = gen.star_graph(6)
        proc = PushDiscovery(g, rng=rng, without_replacement=True)
        for _ in range(50):
            edge = proc.propose(0)
            assert edge is not None
            assert edge[0] != edge[1]

    def test_step_adds_only_valid_edges(self, small_cycle, rng):
        proc = PushDiscovery(small_cycle, rng=rng)
        before = small_cycle.number_of_edges()
        result = proc.step()
        assert small_cycle.number_of_edges() == before + result.num_added
        assert validation.check_graph_invariants(small_cycle) == []
        for v, w in result.added_edges:
            assert small_cycle.has_edge(v, w)

    def test_converged_on_complete_graph(self, rng):
        g = gen.complete_graph(5)
        proc = PushDiscovery(g, rng=rng)
        assert proc.is_converged()
        result = proc.run_to_convergence()
        assert result.rounds == 0 and result.converged

    def test_message_accounting(self, small_cycle, rng):
        proc = PushDiscovery(small_cycle, rng=rng)
        result = proc.step()
        n = small_cycle.n
        id_bits = int(np.ceil(np.log2(n)))
        assert result.messages_sent == 2 * n
        assert result.bits_sent == 2 * n * id_bits


class TestPushConvergence:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: gen.cycle_graph(10),
            lambda: gen.path_graph(10),
            lambda: gen.star_graph(10),
            lambda: gen.binary_tree_graph(10),
            lambda: gen.grid_graph(3, 3),
        ],
    )
    def test_converges_to_complete_graph(self, graph_factory):
        graph = graph_factory()
        proc = PushDiscovery(graph, rng=7)
        result = proc.run_to_convergence()
        assert result.converged
        assert graph.is_complete()
        assert validation.check_graph_invariants(graph) == []

    def test_determinism_same_seed_same_run(self):
        results = []
        for _ in range(2):
            g = gen.cycle_graph(12)
            proc = PushDiscovery(g, rng=42)
            results.append((proc.run_to_convergence().rounds, g.edge_list()))
        assert results[0] == results[1]

    def test_different_seeds_usually_differ(self):
        rounds = set()
        for seed in range(5):
            g = gen.cycle_graph(12)
            rounds.add(PushDiscovery(g, rng=seed).run_to_convergence().rounds)
        assert len(rounds) > 1

    def test_sequential_semantics_also_converges(self):
        g = gen.path_graph(10)
        proc = PushDiscovery(g, rng=3, semantics=UpdateSemantics.SEQUENTIAL)
        assert proc.run_to_convergence().converged

    def test_edge_count_monotone_nondecreasing(self):
        g = gen.cycle_graph(10)
        proc = PushDiscovery(g, rng=11)
        prev = g.number_of_edges()
        for _ in range(50):
            proc.step()
            assert g.number_of_edges() >= prev
            prev = g.number_of_edges()

    def test_min_degree_never_decreases(self):
        g = gen.path_graph(12)
        proc = PushDiscovery(g, rng=13)
        prev = g.min_degree()
        result = proc.run(200)
        assert g.min_degree() >= prev

    def test_run_respects_max_rounds(self):
        g = gen.cycle_graph(20)
        proc = PushDiscovery(g, rng=5)
        result = proc.run(max_rounds=3)
        assert result.rounds == 3
        assert not result.converged

    def test_run_negative_rounds_rejected(self, small_cycle):
        with pytest.raises(ValueError):
            PushDiscovery(small_cycle, rng=0).run(-1)
