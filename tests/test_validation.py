"""Unit tests for graph invariant validation."""

import pytest

from repro.graphs import generators as gen
from repro.graphs import directed_generators as dgen
from repro.graphs import validation
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph


class TestInvariantChecks:
    def test_valid_graph_has_no_problems(self):
        assert validation.check_graph_invariants(gen.cycle_graph(8)) == []
        assert validation.check_graph_invariants(DynamicGraph(3)) == []

    def test_corrupted_graph_detected(self):
        g = gen.path_graph(4)
        # Corrupt the internal structures deliberately.
        g._neighbors[0].append(3)  # asymmetric entry, not in edge set
        problems = validation.check_graph_invariants(g)
        assert problems  # at least one violation reported

    def test_valid_digraph_has_no_problems(self):
        assert validation.check_digraph_invariants(dgen.directed_cycle(6)) == []
        assert validation.check_digraph_invariants(DynamicDiGraph(2)) == []

    def test_corrupted_digraph_detected(self):
        g = dgen.directed_path(4)
        g._out[0].append(3)
        problems = validation.check_digraph_invariants(g)
        assert problems

    def test_invariants_hold_after_many_random_additions(self, rng):
        g = DynamicGraph(15)
        for _ in range(200):
            u = int(rng.integers(15))
            v = int(rng.integers(15))
            g.add_edge(u, v) if u != v else None
        assert validation.check_graph_invariants(g) == []


class TestPreconditions:
    def test_require_connected(self):
        validation.require_connected(gen.cycle_graph(5))
        with pytest.raises(validation.ValidationError):
            validation.require_connected(DynamicGraph(3, [(0, 1)]))

    def test_require_weakly_connected(self):
        validation.require_weakly_connected(dgen.directed_path(4))
        with pytest.raises(validation.ValidationError):
            validation.require_weakly_connected(DynamicDiGraph(3, [(0, 1)]))

    def test_require_strongly_connected(self):
        validation.require_strongly_connected(dgen.directed_cycle(4))
        with pytest.raises(validation.ValidationError):
            validation.require_strongly_connected(dgen.directed_path(4))
