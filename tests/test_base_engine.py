"""Unit tests for the round engine shared by all processes."""

import pytest

from repro.core.base import DiscoveryProcess, RoundResult, UpdateSemantics, id_bits
from repro.core.push import PushDiscovery
from repro.graphs import generators as gen


class TestUpdateSemantics:
    def test_enum_values(self):
        assert UpdateSemantics("synchronous") is UpdateSemantics.SYNCHRONOUS
        assert UpdateSemantics("sequential") is UpdateSemantics.SEQUENTIAL
        with pytest.raises(ValueError):
            UpdateSemantics("other")

    def test_synchronous_proposals_use_round_start_graph(self):
        # With synchronous semantics, a round's proposals can only involve
        # edges of the round-start graph; the paw's pendant node 0 can only
        # be introduced through node 1 in round 0, so no proposal of round 0
        # may connect 0 to both 2 and 3 simultaneously... we check the
        # weaker, directly observable contract: every proposed edge joins
        # two round-start neighbours of some node.
        g = gen.fig1c_nonmonotone()
        start_edges = set(g.edge_list())
        proc = PushDiscovery(g, rng=0)
        result = proc.step()
        for v, w in result.proposed_edges:
            # both endpoints were adjacent to a common node in the start graph
            common = [
                u
                for u in range(4)
                if (min(u, v), max(u, v)) in start_edges and (min(u, w), max(u, w)) in start_edges
            ]
            assert common


class TestRunLoop:
    def test_round_result_fields(self):
        g = gen.cycle_graph(8)
        proc = PushDiscovery(g, rng=0)
        result = proc.step()
        assert isinstance(result, RoundResult)
        assert result.round_index == 0
        assert result.num_added == len(result.added_edges)
        assert proc.round_index == 1

    def test_run_with_history(self):
        g = gen.cycle_graph(8)
        proc = PushDiscovery(g, rng=0)
        result = proc.run(10, record_history=True)
        assert result.history is not None
        assert len(result.history) == result.rounds
        # totals are consistent with the per-round history
        assert result.total_edges_added == sum(r.num_added for r in result.history)

    def test_run_without_history(self):
        g = gen.cycle_graph(8)
        result = PushDiscovery(g, rng=0).run(5)
        assert result.history is None

    def test_until_predicate_stops_early(self):
        g = gen.cycle_graph(16)
        proc = PushDiscovery(g, rng=0)
        result = proc.run(10_000, until=lambda p: p.graph.number_of_edges() >= 20)
        assert g.number_of_edges() >= 20
        assert result.rounds < 10_000

    def test_until_true_at_start_runs_zero_rounds(self):
        g = gen.cycle_graph(8)
        proc = PushDiscovery(g, rng=0)
        result = proc.run(100, until=lambda p: True)
        assert result.rounds == 0
        assert result.converged

    def test_callbacks_called_every_round(self):
        g = gen.cycle_graph(8)
        proc = PushDiscovery(g, rng=0)
        calls = []
        proc.run(7, callbacks=[lambda p, r: calls.append(r.round_index)])
        assert calls == list(range(7))

    def test_totals_accumulate_across_runs(self):
        g = gen.cycle_graph(10)
        proc = PushDiscovery(g, rng=0)
        proc.run(5)
        mid_messages = proc.total_messages
        proc.run(5)
        assert proc.total_messages > mid_messages
        assert proc.round_index == 10 or proc.is_converged()

    def test_default_round_cap_scales_superlinearly(self):
        small = PushDiscovery(gen.cycle_graph(8), rng=0).default_round_cap()
        large = PushDiscovery(gen.cycle_graph(64), rng=0).default_round_cap()
        assert large > 8 * small / 2  # grows faster than linearly in n

    def test_repr_mentions_class_and_round(self):
        proc = PushDiscovery(gen.cycle_graph(6), rng=0)
        assert "PushDiscovery" in repr(proc)


class TestAbstractInterface:
    def test_cannot_instantiate_abstract_process(self):
        with pytest.raises(TypeError):
            DiscoveryProcess(gen.cycle_graph(4), rng=0)  # type: ignore[abstract]


class TestIdBits:
    """Pin the single-authority bit formula: max(1, ceil(log2 n))."""

    @pytest.mark.parametrize(
        "n,expected",
        [
            (1, 1),  # degenerate: a lone node still pays one bit per ID
            (2, 1),
            (3, 2),  # non-power of two rounds up
            (5, 3),
            (12, 4),
            (96, 7),
            (1024, 10),
            (1025, 11),  # just past a power of two
        ],
    )
    def test_formula_pinned(self, n, expected):
        assert id_bits(n) == expected

    def test_engine_and_network_share_the_formula(self):
        from repro.network.message import id_bits_for

        for n in (1, 2, 3, 12, 97, 1025):
            assert id_bits_for(n) == id_bits(n)

    def test_round_bits_use_shared_formula(self):
        n = 12  # not a power of two
        proc = PushDiscovery(gen.cycle_graph(n), rng=0)
        result = proc.step()
        assert result.bits_sent == result.messages_sent * id_bits(n)
        fast = PushDiscovery(gen.cycle_graph(n), rng=0, backend="array")
        assert fast.step().bits_sent == result.bits_sent
