"""Unit tests for the robustness variants (failures, participation, churn)."""

import pytest

from repro.core.variants import ChurnModel, FaultyPullDiscovery, FaultyPushDiscovery
from repro.core.push import PushDiscovery
from repro.graphs import generators as gen


class TestFaultyProcesses:
    def test_invalid_parameters_rejected(self):
        g = gen.cycle_graph(8)
        with pytest.raises(ValueError):
            FaultyPushDiscovery(g, rng=0, failure_prob=1.0)
        with pytest.raises(ValueError):
            FaultyPushDiscovery(g, rng=0, failure_prob=-0.1)
        with pytest.raises(ValueError):
            FaultyPushDiscovery(g, rng=0, participation_prob=0.0)

    def test_zero_failure_full_participation_behaves_like_base(self):
        rounds_base = PushDiscovery(gen.cycle_graph(10), rng=5).run_to_convergence().rounds
        rounds_faulty = (
            FaultyPushDiscovery(gen.cycle_graph(10), rng=5, failure_prob=0.0, participation_prob=1.0)
            .run_to_convergence()
            .rounds
        )
        assert rounds_base == rounds_faulty

    def test_faulty_push_still_converges(self):
        g = gen.cycle_graph(10)
        proc = FaultyPushDiscovery(g, rng=1, failure_prob=0.3, participation_prob=0.8)
        assert proc.run_to_convergence().converged
        assert g.is_complete()

    def test_faulty_pull_still_converges(self):
        g = gen.path_graph(10)
        proc = FaultyPullDiscovery(g, rng=2, failure_prob=0.3, participation_prob=0.8)
        assert proc.run_to_convergence().converged

    def test_failures_slow_convergence_on_average(self):
        slow, fast = [], []
        for seed in range(4):
            fast.append(PushDiscovery(gen.cycle_graph(12), rng=seed).run_to_convergence().rounds)
            slow.append(
                FaultyPushDiscovery(gen.cycle_graph(12), rng=seed, failure_prob=0.6)
                .run_to_convergence()
                .rounds
            )
        assert sum(slow) > sum(fast)

    def test_partial_participation_subset_of_nodes(self):
        g = gen.cycle_graph(20)
        proc = FaultyPushDiscovery(g, rng=3, participation_prob=0.5)
        participants = list(proc.participating_nodes())
        assert 0 < len(participants) < 20
        assert all(0 <= u < 20 for u in participants)

    def test_full_participation_returns_all_nodes(self):
        g = gen.cycle_graph(6)
        proc = FaultyPushDiscovery(g, rng=0, participation_prob=1.0)
        assert list(proc.participating_nodes()) == list(range(6))


class TestChurnModel:
    def test_invalid_parameters(self):
        proc = PushDiscovery(gen.cycle_graph(8), rng=0)
        with pytest.raises(ValueError):
            ChurnModel(proc, leave_prob=1.0)
        with pytest.raises(ValueError):
            ChurnModel(proc, min_active_fraction=0.0)

    def test_active_floor_respected(self):
        proc = PushDiscovery(gen.cycle_graph(10), rng=0)
        churn = ChurnModel(proc, leave_prob=0.9, join_prob=0.0, min_active_fraction=0.5, rng=1)
        for _ in range(50):
            churn.churn_step()
        assert len(churn.active) >= churn.min_active

    def test_inactive_nodes_do_not_propose(self):
        proc = PushDiscovery(gen.cycle_graph(8), rng=0)
        churn = ChurnModel(proc, rng=1)
        churn.active.clear()
        churn.active.update({0, 1})
        # node 5 is inactive -> its guarded propose returns None
        assert proc.propose(5) is None

    def test_run_converges_with_mild_churn(self):
        proc = PushDiscovery(gen.cycle_graph(10), rng=4)
        churn = ChurnModel(proc, leave_prob=0.02, join_prob=0.3, min_active_fraction=0.7, rng=5)
        rounds, converged = churn.run(max_rounds=5000)
        assert converged
        assert churn.active_pairs_complete()

    def test_active_pairs_complete_definition(self):
        proc = PushDiscovery(gen.complete_graph(6), rng=0)
        churn = ChurnModel(proc, rng=0)
        assert churn.active_pairs_complete()
