"""Tests for the command-line interface."""

import pytest

from repro import cli


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_parses_run(self):
        args = cli.build_parser().parse_args(["run", "--process", "pull", "--n", "32"])
        assert args.process == "pull"
        assert args.n == 32

    def test_parses_scaling_sizes(self):
        args = cli.build_parser().parse_args(["scaling", "--sizes", "8", "16", "32"])
        assert args.sizes == [8, 16, 32]

    def test_parses_async(self):
        args = cli.build_parser().parse_args(
            ["async", "--protocol", "pull", "--jitter", "1.5", "--churn-rate", "0.02"]
        )
        assert args.protocol == "pull"
        assert args.jitter == 1.5
        assert args.churn_rate == 0.02
        assert not args.compare_sync


class TestCommands:
    def test_run_command(self, capsys):
        assert cli.main(["run", "--process", "push", "--family", "cycle", "--n", "12",
                         "--trials", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "rounds_mean" in out and "cycle" in out

    def test_scaling_command(self, capsys):
        assert cli.main(["scaling", "--process", "push", "--family", "cycle",
                         "--sizes", "8", "16", "--trials", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "power-law fit" in out
        assert "theorem-shape fit" in out

    def test_run_baseline_on_array_backend(self, capsys):
        """End-to-end: a baseline rides the CLI's --backend array plumbing, and
        the seeded summary matches the list backend exactly."""
        outputs = {}
        for backend in ("list", "array"):
            assert cli.main(["run", "--process", "name_dropper", "--family", "cycle",
                             "--n", "16", "--trials", "2", "--seed", "5",
                             "--backend", backend]) == 0
            outputs[backend] = capsys.readouterr().out
            assert "rounds_mean" in outputs[backend]
        assert outputs["list"] == outputs["array"]

    def test_run_flooding_on_array_backend(self, capsys):
        assert cli.main(["run", "--process", "flooding", "--family", "cycle",
                         "--n", "16", "--trials", "1", "--seed", "5",
                         "--backend", "array"]) == 0
        assert "rounds_mean" in capsys.readouterr().out

    def test_nonmonotone_command(self, capsys):
        assert cli.main(["nonmonotone", "--trials", "50", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "reproduced" in out
        assert "diamond" in out

    def test_group_command(self, capsys):
        assert cli.main(["group", "--host-family", "cycle", "--host-n", "30",
                         "--k", "6", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "group_k" in out

    def test_run_command_save_json(self, capsys, tmp_path):
        target = tmp_path / "result.json"
        assert cli.main(["run", "--process", "push", "--family", "cycle", "--n", "10",
                         "--trials", "1", "--seed", "6", "--save", str(target)]) == 0
        assert target.exists()
        import json

        payload = json.loads(target.read_text())
        assert payload["rows"][0]["process"] == "push"
        assert payload["metadata"]["command"] == "run"

    def test_scaling_command_save_csv(self, capsys, tmp_path):
        target = tmp_path / "scaling.csv"
        assert cli.main(["scaling", "--process", "push", "--family", "cycle",
                         "--sizes", "8", "16", "--trials", "1", "--seed", "7",
                         "--save", str(target)]) == 0
        content = target.read_text()
        assert "rounds_mean" in content
        assert content.count("\n") >= 3

    def test_async_command_degenerate_matches_sync(self, capsys):
        """Sub-tick fixed latency + no faults: the async run IS the sync run."""
        assert cli.main(["async", "--protocol", "push", "--family", "cycle",
                         "--n", "16", "--seed", "3", "--compare-sync"]) == 0
        out = capsys.readouterr().out
        assert "inflation" in out and "True" in out
        row = out.splitlines()[1].split()
        ticks, sync_rounds, inflation = row[3], row[-2], row[-1]
        assert ticks == sync_rounds
        assert inflation == "1"

    def test_async_command_with_faults(self, capsys, tmp_path):
        target = tmp_path / "async.json"
        assert cli.main(["async", "--n", "12", "--seed", "3", "--jitter", "0.8",
                         "--drop", "0.1", "--churn-rate", "0.01",
                         "--save", str(target)]) == 0
        out = capsys.readouterr().out
        assert "evictions" in out and "True" in out
        import json

        payload = json.loads(target.read_text())
        assert payload["rows"][0]["converged"] is True
        assert payload["metadata"]["command"] == "async"

    def test_directed_command(self, capsys):
        assert cli.main(["directed", "--family", "directed_cycle",
                         "--sizes", "6", "10", "--trials", "1", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "power-law fit" in out
