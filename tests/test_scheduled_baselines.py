"""Activation schedules restrict *every* registered process on both backends.

Regression suite for the scheduled-baseline bug: the baselines override
``step()`` wholesale, and before this fix they never consulted
``participating_nodes()``, so a ``ScheduledProcess`` subset run produced
byte-identical edge sets to full activation.  The headline test here fails
on the pre-fix code: a strict subset of active nodes must add strictly
fewer edges than full activation for every registered process, on the
list and the array backend alike.

The second half pins cross-backend trace equivalence *under* schedules:
a seeded subset schedule produces identical per-round edge sets on both
backends (the subset bulk draw consumes one uniform per participating
node on each).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduler import (
    BernoulliActivation,
    FixedSubsetActivation,
    RoundRobinActivation,
    ScheduledProcess,
)
from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen
from repro.simulation.engine import PROCESS_REGISTRY, make_process

N = 16
ROUNDS = 4
SUBSET = [0, 1, 2]
BACKENDS = ["list", "array"]


def _base_graph(name: str):
    """A connected starting graph of the kind the process requires."""
    _, needs_directed = PROCESS_REGISTRY[name]
    if needs_directed or name == "pointer_jump_directed":
        return dgen.random_strongly_connected_digraph(N, rng=np.random.default_rng(42))
    return gen.cycle_graph(N)


def _edges_after(name: str, backend: str, schedule) -> int:
    process = make_process(name, _base_graph(name).copy(), rng=11, backend=backend)
    if schedule is not None:
        process = ScheduledProcess(process, schedule)
    for _ in range(ROUNDS):
        process.step()
    return process.total_edges_added


class TestSubsetRestrictsEveryProcess:
    """The headline regression: subset runs add strictly fewer edges."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(PROCESS_REGISTRY))
    def test_subset_adds_strictly_fewer_edges(self, name, backend):
        full = _edges_after(name, backend, None)
        subset = _edges_after(name, backend, FixedSubsetActivation(SUBSET))
        assert full > 0, f"{name} added nothing under full activation"
        assert subset < full, (
            f"{name} on {backend}: subset activation added {subset} edges "
            f"vs {full} under full activation — the schedule was ignored"
        )

    @pytest.mark.parametrize("name", ["flooding", "name_dropper", "pointer_jump"])
    def test_subset_edge_sets_match_across_backends(self, name):
        """Both backends agree on *which* edges a subset run creates."""
        edge_sets = {}
        for backend in BACKENDS:
            process = make_process(name, gen.cycle_graph(N), rng=5, backend=backend)
            wrapped = ScheduledProcess(process, FixedSubsetActivation(SUBSET))
            for _ in range(ROUNDS):
                wrapped.step()
            edge_sets[backend] = sorted(
                (min(int(u), int(v)), max(int(u), int(v)))
                for u, v in process.graph.edge_list()
            )
        assert edge_sets["list"] == edge_sets["array"]


class TestScheduledTraceEquivalence:
    """ScheduledProcess × {push, pull, baselines}: list ≡ array per round."""

    PROCESSES = ["push", "pull", "name_dropper", "pointer_jump", "flooding"]

    @staticmethod
    def _run(name: str, backend: str, make_schedule):
        process = make_process(name, gen.cycle_graph(20), rng=13, backend=backend)
        wrapped = ScheduledProcess(process, make_schedule())
        per_round = []
        for _ in range(5):
            result = wrapped.step()
            per_round.append(
                frozenset(
                    (min(int(u), int(v)), max(int(u), int(v)))
                    for u, v in result.added_edges
                )
            )
        return {
            "per_round": per_round,
            "messages": process.total_messages,
            "bits": process.total_bits,
            "edges": sorted(
                (min(int(u), int(v)), max(int(u), int(v)))
                for u, v in process.graph.edge_list()
            ),
        }

    @pytest.mark.parametrize("name", PROCESSES)
    def test_fixed_subset_schedule_trace_equivalent(self, name):
        ref = self._run(name, "list", lambda: FixedSubsetActivation([1, 4, 7, 10]))
        fast = self._run(name, "array", lambda: FixedSubsetActivation([1, 4, 7, 10]))
        assert ref == fast

    @pytest.mark.parametrize("name", PROCESSES)
    def test_bernoulli_schedule_trace_equivalent(self, name):
        """The schedule draws from the process rng; both backends share the stream."""
        ref = self._run(name, "list", lambda: BernoulliActivation(0.5))
        fast = self._run(name, "array", lambda: BernoulliActivation(0.5))
        assert ref == fast

    @pytest.mark.parametrize("name", ["name_dropper", "pointer_jump"])
    def test_round_robin_single_actor_rounds(self, name):
        """One node per tick: a baseline round does at most one node's work."""
        for backend in BACKENDS:
            process = make_process(name, gen.cycle_graph(10), rng=2, backend=backend)
            wrapped = ScheduledProcess(process, RoundRobinActivation())
            result = wrapped.step()
            assert result.messages_sent <= 2  # one actor (pointer jump pays 2)


class TestScheduledProcessPassthrough:
    """The wrapper is a full stand-in: no reaching into ``.process`` needed."""

    def test_exposes_rng_round_index_metrics_history(self):
        process = make_process("push", gen.cycle_graph(12), rng=0, backend="array")
        wrapped = ScheduledProcess(process, FixedSubsetActivation([0, 1, 2]))
        assert wrapped.rng is process.rng
        assert wrapped.round_index == 0
        assert wrapped.backend == "array"
        assert wrapped.semantics is process.semantics
        first = wrapped.step()
        assert wrapped.round_index == 1
        assert wrapped.history == [first]
        result = wrapped.run(3)
        assert wrapped.round_index == 1 + result.rounds
        assert len(wrapped.history) == 1 + result.rounds
        metrics = wrapped.metrics
        assert metrics["rounds"] == wrapped.round_index
        assert metrics["edges_added"] == wrapped.total_edges_added == process.total_edges_added
        assert metrics["messages"] == wrapped.total_messages == process.total_messages
        assert metrics["bits"] == wrapped.total_bits == process.total_bits

    def test_degree_view_passthrough_matches_graph(self):
        process = make_process("pull", gen.cycle_graph(10), rng=3, backend="list")
        wrapped = ScheduledProcess(process, FixedSubsetActivation([0, 5]))
        wrapped.run(4)
        assert np.array_equal(wrapped.degree_view(), process.graph.degrees())
        assert wrapped.cached_min_degree() == process.graph.min_degree()

    def test_out_of_range_subset_raises_at_first_step(self):
        process = make_process("push", gen.cycle_graph(6), rng=0)
        wrapped = ScheduledProcess(process, FixedSubsetActivation([2, 9]))
        with pytest.raises(ValueError, match="node 9"):
            wrapped.step()

    def test_run_accepts_positional_arguments(self):
        """The wrapper's run mirrors DiscoveryProcess.run's full signature."""
        process = make_process("pull", gen.cycle_graph(8), rng=0)
        wrapped = ScheduledProcess(process, FixedSubsetActivation([0, 1]))
        seen = []
        result = wrapped.run(3, None, True, [lambda proc, res: seen.append(res)])
        assert result.rounds == 3
        assert len(result.history) == 3
        assert seen == wrapped.history
