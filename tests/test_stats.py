"""Unit tests for statistics and scaling-law fitting."""

import numpy as np
import pytest

from repro.simulation import stats


class TestBasicStats:
    def test_ci95_halfwidth(self):
        assert stats.ci95_halfwidth([5.0]) == 0.0
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        hw = stats.ci95_halfwidth(values)
        assert hw == pytest.approx(1.96 * np.std(values, ddof=1) / np.sqrt(5))

    def test_geometric_mean(self):
        assert stats.geometric_mean([2, 8]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            stats.geometric_mean([])
        with pytest.raises(ValueError):
            stats.geometric_mean([1.0, -2.0])


class TestPowerLawFit:
    def test_recovers_exact_power_law(self):
        x = np.array([8, 16, 32, 64, 128], dtype=float)
        y = 3.0 * x ** 1.7
        fit = stats.fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.7, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert np.allclose(fit.predict(x), y)

    def test_noisy_power_law(self, rng):
        x = np.array([8, 16, 32, 64, 128, 256], dtype=float)
        y = 2.0 * x ** 1.5 * np.exp(rng.normal(0, 0.05, size=x.size))
        fit = stats.fit_power_law(x, y)
        assert 1.3 < fit.exponent < 1.7
        assert fit.r_squared > 0.95

    def test_input_validation(self):
        with pytest.raises(ValueError):
            stats.fit_power_law([1], [1])
        with pytest.raises(ValueError):
            stats.fit_power_law([1, 2], [1, -2])

    def test_empirical_exponent_shortcut(self):
        x = [4, 8, 16]
        y = [16, 64, 256]
        assert stats.empirical_exponent(x, y) == pytest.approx(2.0)


class TestPowerLogLawFit:
    def test_recovers_exact_n_log2_n(self):
        x = np.array([16, 32, 64, 128, 256], dtype=float)
        y = 5.0 * x * np.log(x) ** 2
        fit = stats.fit_power_log_law(x, y, poly_exponent=1.0)
        assert fit.log_exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.coefficient == pytest.approx(5.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_exact_n2_log_n(self):
        x = np.array([16, 32, 64, 128], dtype=float)
        y = 0.5 * x ** 2 * np.log(x)
        fit = stats.fit_power_log_law(x, y, poly_exponent=2.0)
        assert fit.log_exponent == pytest.approx(1.0, abs=1e-9)
        assert fit.poly_exponent == 2.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            stats.fit_power_log_law([1, 2], [1, 2])  # x must exceed 1
        with pytest.raises(ValueError):
            stats.fit_power_log_law([4], [4])


class TestRatioChecks:
    def test_ratio_series(self):
        ratios = stats.ratio_series([2, 4], [8, 32], lambda n: n * n)
        assert ratios.tolist() == [2.0, 2.0]
        with pytest.raises(ValueError):
            stats.ratio_series([2], [8], lambda n: 0.0)

    def test_bounded_ratio_accepts_constant_factor(self):
        x = [8, 16, 32, 64]
        y = [3 * n * np.log(n) for n in x]
        ok, info = stats.bounded_ratio(x, y, lambda n: n * np.log(n))
        assert ok
        assert info["spread"] == pytest.approx(1.0)
        assert info["ratio_mean"] == pytest.approx(3.0)

    def test_bounded_ratio_rejects_wrong_shape(self):
        x = [8, 16, 32, 64, 128]
        y = [float(n) ** 2 for n in x]  # quadratic vs linear bound
        ok, info = stats.bounded_ratio(x, y, lambda n: float(n), spread_tolerance=10.0)
        assert not ok
        assert info["spread"] > 10.0
