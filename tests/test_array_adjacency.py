"""Property-style randomized tests for the array graph backend.

:class:`DynamicGraph` / :class:`DynamicDiGraph` act as the oracle: every
randomized operation sequence is applied to both representations and all
observable state must agree — degrees, membership, edge sets, neighbour
row order, sampling, and the structural invariants (no self loops, no
duplicates).  Capacity doubling is crossed deliberately so growth bugs
cannot hide below the initial allocation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs.array_adjacency import (
    ArrayDiGraph,
    ArrayGraph,
    as_backend,
    backend_name,
)
from repro.graphs import generators as gen


def random_edge_sequence(n, count, rng):
    """A seeded edge stream with duplicates and self loops mixed in."""
    us = rng.integers(n, size=count)
    vs = rng.integers(n, size=count)
    return list(zip(us.tolist(), vs.tolist()))


class TestArrayGraphOracle:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_add_sequence_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 40))
        oracle = DynamicGraph(n)
        array = ArrayGraph(n)
        for u, v in random_edge_sequence(n, 4 * n, rng):
            assert oracle.add_edge(u, v) == array.add_edge(u, v)
        assert array.number_of_edges() == oracle.number_of_edges()
        assert array.edge_list() == oracle.edge_list()
        assert np.array_equal(array.degrees(), oracle.degrees())
        assert array.min_degree() == oracle.min_degree()
        assert array.max_degree() == oracle.max_degree()
        for u in range(n):
            # Same contents *and* same insertion order per row.
            assert array.neighbors(u).tolist() == list(oracle.neighbors(u))
        for u, v in random_edge_sequence(n, 50, rng):
            assert array.has_edge(u, v) == oracle.has_edge(u, v)
        assert np.array_equal(array.adjacency_matrix(), oracle.adjacency_matrix())
        assert array == oracle  # cross-representation equality

    @pytest.mark.parametrize("seed", range(5))
    def test_batch_add_matches_sequential_oracle(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(5, 30))
        oracle = DynamicGraph(n)
        array = ArrayGraph(n)
        for _ in range(6):
            chunk = random_edge_sequence(n, n, rng)
            assert array.add_edges_batch(chunk) == oracle.add_edges_batch(chunk)
        assert array == oracle
        for u in range(n):
            assert array.neighbors(u).tolist() == list(oracle.neighbors(u))

    def test_no_self_loops_or_duplicates_ever(self):
        rng = np.random.default_rng(3)
        g = ArrayGraph(12)
        g.add_edges_batch(random_edge_sequence(12, 300, rng))
        seen = set()
        for u in range(12):
            row = g.neighbors(u).tolist()
            assert u not in row, "self loop stored"
            assert len(row) == len(set(row)), "duplicate neighbour stored"
            for v in row:
                seen.add((min(u, v), max(u, v)))
        assert len(seen) == g.number_of_edges()

    def test_growth_across_capacity_doubling(self):
        # A star forces one node's row through every doubling boundary.
        n = 70
        g = ArrayGraph(n)
        caps = {g.capacity}
        for leaf in range(1, n):
            g.add_edge(0, leaf)
            caps.add(g.capacity)
            assert g.degree(0) == leaf
            assert g.neighbors(0).tolist() == list(range(1, leaf + 1))
        assert g.capacity >= n - 1
        assert caps == {4, 8, 16, 32, 64, 128}, "capacity must grow by doubling"
        oracle = DynamicGraph(n, [(0, leaf) for leaf in range(1, n)])
        assert g == oracle

    def test_random_neighbor_uniform_over_fixed_seed(self):
        g = as_backend(gen.star_graph(9), "array")  # hub 0, leaves 1..8
        rng = np.random.default_rng(42)
        counts = np.zeros(9, dtype=int)
        draws = 8000
        for _ in range(draws):
            counts[g.random_neighbor(0, rng)] += 1
        assert counts[0] == 0
        expected = draws / 8
        assert np.all(np.abs(counts[1:] - expected) < 5 * np.sqrt(expected))

    def test_bulk_random_neighbors_matches_list_backend_stream(self):
        base = gen.erdos_renyi_graph(30, 0.2, rng=np.random.default_rng(8))
        fast = as_backend(base, "array")
        nodes = np.arange(30)
        draws_list = base.random_neighbors(nodes, np.random.default_rng(77))
        draws_array = fast.random_neighbors(nodes, np.random.default_rng(77))
        assert np.array_equal(draws_list, draws_array)

    def test_bulk_sampling_handles_isolated_and_sentinel_nodes(self):
        g = ArrayGraph(5, [(0, 1)])
        rng = np.random.default_rng(0)
        out = g.random_neighbors(np.array([0, 2, -1, 1]), rng)
        assert out[0] == 1 and out[3] == 0
        assert out[1] == -1 and out[2] == -1

    def test_copy_is_independent(self):
        g = as_backend(gen.cycle_graph(10), "array")
        h = g.copy()
        h.add_edge(0, 5)
        assert not g.has_edge(0, 5)
        assert h.has_edge(0, 5)

    def test_roundtrip_conversions(self):
        base = gen.erdos_renyi_graph(20, 0.3, rng=np.random.default_rng(4))
        fast = as_backend(base, "array")
        assert backend_name(fast) == "array"
        back = as_backend(fast, "list")
        assert backend_name(back) == "list"
        assert back == base
        assert as_backend(fast, "array") is fast  # no-op when already matching

    def test_out_of_range_nodes_rejected(self):
        g = ArrayGraph(4)
        with pytest.raises(IndexError):
            g.add_edge(0, 4)
        with pytest.raises(IndexError):
            g.add_edges_batch([(0, 9)])
        with pytest.raises(ValueError):
            g.random_neighbor(0, np.random.default_rng(0))  # isolated

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            as_backend(DynamicGraph(3), "gpu")


class TestArrayDiGraphOracle:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_add_sequence_matches_oracle(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(5, 30))
        oracle = DynamicDiGraph(n)
        array = ArrayDiGraph(n)
        for u, v in random_edge_sequence(n, 4 * n, rng):
            assert oracle.add_edge(u, v) == array.add_edge(u, v)
        assert array.number_of_edges() == oracle.number_of_edges()
        assert array.edge_list() == oracle.edge_list()
        assert np.array_equal(array.out_degrees(), oracle.out_degrees())
        assert np.array_equal(array.in_degrees(), oracle.in_degrees())
        for u in range(n):
            assert array.out_neighbors(u).tolist() == list(oracle.out_neighbors(u))
        assert np.array_equal(array.adjacency_matrix(), oracle.adjacency_matrix())
        assert array == oracle

    @pytest.mark.parametrize("seed", range(3))
    def test_batch_add_matches_sequential_oracle(self, seed):
        rng = np.random.default_rng(300 + seed)
        n = int(rng.integers(5, 25))
        oracle = DynamicDiGraph(n)
        array = ArrayDiGraph(n)
        for _ in range(5):
            chunk = random_edge_sequence(n, n, rng)
            assert array.add_edges_batch(chunk) == oracle.add_edges_batch(chunk)
        assert array == oracle

    def test_bulk_out_sampling_matches_list_backend_stream(self):
        from repro.graphs import directed_generators as dgen

        base = dgen.random_strongly_connected_digraph(20, rng=np.random.default_rng(6))
        fast = as_backend(base, "array")
        nodes = np.arange(20)
        a = base.random_out_neighbors(nodes, np.random.default_rng(13))
        b = fast.random_out_neighbors(nodes, np.random.default_rng(13))
        assert np.array_equal(a, b)

    def test_out_neighbors_at_gather_parity(self):
        from repro.graphs import directed_generators as dgen

        base = dgen.random_strongly_connected_digraph(15, rng=np.random.default_rng(2))
        fast = as_backend(base, "array")
        rng = np.random.default_rng(21)
        nodes = rng.integers(15, size=30)
        idx = np.where(
            base.out_degrees()[nodes] > 0,
            rng.integers(1 << 30, size=30) % np.maximum(base.out_degrees()[nodes], 1),
            -1,
        )
        a = base.out_neighbors_at(nodes, idx)
        b = fast.out_neighbors_at(nodes, idx)
        assert np.array_equal(a, b)
        assert np.all((a >= 0) == (idx >= 0))  # -1 sentinel passthrough

    def test_growth_across_capacity_doubling(self):
        n = 40
        g = ArrayDiGraph(n)
        for v in range(1, n):
            g.add_edge(0, v)
        assert g.out_degree(0) == n - 1
        assert g.capacity >= n - 1
        assert g.out_neighbors(0).tolist() == list(range(1, n))
        assert g.in_degrees().sum() == n - 1

    def test_to_undirected_forgets_direction(self):
        g = ArrayDiGraph(4, [(0, 1), (1, 0), (2, 3)])
        und = g.to_undirected()
        assert und.edge_list() == [(0, 1), (2, 3)]
