"""Crash-tolerant pools: injected worker death, retry/backoff, degradation, leaks.

The deterministic :class:`~repro.network.failures.FaultInjector` kills
pool workers (``os._exit``) or raises inside them at pre-registered
coordinates, so each recovery path is exercised reproducibly:

* the trial runner rebuilds its pool and retries — recovered results
  equal an uninjected run's (trials replay their own seed streams);
* past the retry budget both pools degrade to in-process execution and
  still finish correctly;
* a deterministic in-worker exception is never retried: the runner
  records it per-trial (siblings intact), the sharded engine propagates
  it after releasing every shared-memory segment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.network.failures import DropBurst, FaultInjector, InjectedFault
from repro.simulation.engine import make_process
from repro.simulation.experiment import ExperimentSpec
from repro.simulation.runner import run_trials, summarize_trials
from repro.simulation.sharding import ShardedProcess, _SharedBlock

SEED = 20120614


def canon(edges):
    return sorted((int(u), int(v)) for u, v in edges)


def spec(n=24, trials=4):
    return ExperimentSpec(process="push", family="cycle", n=n, trials=trials)


def results_key(trials):
    return [(t.trial_index, t.rounds, t.edges_added, t.messages, t.bits) for t in trials]


# --------------------------------------------------------------------------- #
# trial runner
# --------------------------------------------------------------------------- #
class TestRunnerFaults:
    def test_pool_matches_serial(self):
        serial = run_trials(spec(), root_seed=11)
        pooled = run_trials(spec(), root_seed=11, processes=2)
        assert results_key(pooled) == results_key(serial)

    def test_worker_death_is_retried_and_recovers(self):
        serial = run_trials(spec(), root_seed=11)
        injector = FaultInjector().kill_trial(1, times=1)
        recovered = run_trials(spec(), root_seed=11, processes=2, fault_injector=injector)
        assert results_key(recovered) == results_key(serial)
        assert not any(t.failed for t in recovered)

    def test_degrades_to_in_process_after_budget(self):
        serial = run_trials(spec(), root_seed=11)
        injector = FaultInjector()
        for i in range(4):
            injector.kill_trial(i, times=10)  # every pooled attempt dies
        degraded = run_trials(
            spec(), root_seed=11, processes=2, retries=2, fault_injector=injector
        )
        assert results_key(degraded) == results_key(serial)

    def test_raising_trial_recorded_with_siblings_intact(self):
        serial = run_trials(spec(), root_seed=11)
        injector = FaultInjector(mode="raise").kill_trial(2, times=1)
        mixed = run_trials(spec(), root_seed=11, processes=2, fault_injector=injector)
        assert [t.failed for t in mixed] == [False, False, True, False]
        error = mixed[2].error
        assert error.trial_index == 2
        assert error.root_seed == 11
        assert "push on cycle" in error.label
        assert "InjectedFault" in error.cause
        kept = [t for t in mixed if not t.failed]
        assert results_key(kept) == [k for k in results_key(serial) if k[0] != 2]

    def test_summarize_counts_failures_and_rejects_all_failed(self):
        injector = FaultInjector(mode="raise").kill_trial(0, times=1)
        mixed = run_trials(spec(trials=2), root_seed=11, processes=2, fault_injector=injector)
        summary = summarize_trials(mixed)
        assert summary["failed"] == 1.0
        assert summary["trials"] == 1.0

        all_failed = [t for t in mixed if t.failed] or mixed[:1]
        with pytest.raises(ValueError, match="failed"):
            summarize_trials([t for t in mixed if t.failed] * 2 or all_failed)


# --------------------------------------------------------------------------- #
# sharded pool
# --------------------------------------------------------------------------- #
def sharded(n=64, parallel=None, **kwargs):
    rng = np.random.default_rng(3)
    graph = gen.make_family("cycle", n, rng)
    process = make_process("push", graph, rng=rng, backend="array")
    return ShardedProcess(process, shards=3, seed=999, parallel=parallel, **kwargs)


class TestShardedFaults:
    def test_shard_worker_death_retried_draw_for_draw(self):
        reference = sharded(parallel=False)
        reference.run_to_convergence()
        reference.close()

        injector = FaultInjector().kill_shard_round(2, shard=0, times=1)
        survivor = sharded(parallel=True, fault_injector=injector)
        try:
            survivor.run_to_convergence()
            assert canon(survivor.graph.edges()) == canon(reference.graph.edges())
            assert survivor.pool_failures == 1
            assert survivor._parallel  # recovered, not degraded
        finally:
            survivor.close()

    def test_shard_pool_degrades_after_budget(self):
        reference = sharded(parallel=False)
        reference.run_to_convergence()
        reference.close()

        injector = FaultInjector().kill_shard_round(2, shard=1, times=10)
        degraded = sharded(parallel=True, retries=2, fault_injector=injector)
        try:
            degraded.run_to_convergence()
            assert canon(degraded.graph.edges()) == canon(reference.graph.edges())
            assert not degraded._parallel
            assert degraded.pool_failures == 3  # retries + the final straw
        finally:
            degraded.close()

    def test_worker_exception_propagates_with_zero_leaked_segments(self):
        injector = FaultInjector(mode="raise").kill_shard_round(1, shard=0, times=1)
        process = sharded(parallel=True, fault_injector=injector)
        published: list = []
        original_publish = _SharedBlock.publish

        def tracking_publish(self, array):
            spec = original_publish(self, array)
            published.append(spec[0])
            return spec

        _SharedBlock.publish = tracking_publish
        try:
            with pytest.raises(InjectedFault):
                process.run_to_convergence()
        finally:
            _SharedBlock.publish = original_publish
            process.close()
        assert published, "pool path never published shared memory"
        assert process._blocks == {}
        assert process._pool is None
        from multiprocessing import shared_memory

        for name in set(published):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_after_init_failure_is_silent(self):
        """Partially-constructed wrappers (ctor raised) must not warn on gc."""
        from repro.core.variants import FaultyPushDiscovery

        rng = np.random.default_rng(3)
        graph = gen.make_family("cycle", 8, rng)
        process = FaultyPushDiscovery(graph, rng=rng)
        with pytest.raises(ValueError, match="no sharded round kernel"):
            ShardedProcess(process, shards=2)


# --------------------------------------------------------------------------- #
# failure models
# --------------------------------------------------------------------------- #
class TestDropBurst:
    def test_validates_probabilities(self):
        with pytest.raises(ValueError):
            DropBurst(p_bad=1.0, p_recover=0.5)
        with pytest.raises(ValueError):
            DropBurst(p_bad=0.1, p_recover=0.0)

    def test_degenerate_channel_is_reliable(self):
        channel = DropBurst(p_bad=0.0, p_recover=1.0)
        rng = np.random.default_rng(SEED)
        assert all(channel.delivered(None, rng) for _ in range(200))

    def test_losses_arrive_in_bursts(self):
        """Same stationary loss rate as DropUniform, but correlated runs."""
        channel = DropBurst(p_bad=0.05, p_recover=0.2)
        rng = np.random.default_rng(SEED)
        outcomes = [channel.delivered(None, rng) for _ in range(20000)]
        losses = outcomes.count(False) / len(outcomes)
        # stationary loss rate p_bad / (p_bad + p_recover) = 0.2
        assert 0.1 < losses < 0.3
        # mean loss-burst length 1/p_recover = 5 — far above iid's ~1
        bursts = []
        run = 0
        for delivered in outcomes:
            if not delivered:
                run += 1
            elif run:
                bursts.append(run)
                run = 0
        assert np.mean(bursts) > 2.5

    def test_injector_validates_mode(self):
        with pytest.raises(ValueError, match="mode"):
            FaultInjector(mode="explode")

    def test_injector_schedule_is_attempt_aware(self):
        injector = FaultInjector().kill_trial(3, times=2)
        assert injector.take_trial(3) == "exit"
        assert injector.take_trial(3) == "exit"
        assert injector.take_trial(3) is None
        assert injector.take_trial(0) is None
        injector.kill_shard_round(5, shard=1)
        assert injector.take_shard_round(5, 1) == "exit"
        assert injector.take_shard_round(5, 1) is None
        assert injector.take_shard_round(5, 0) is None
