"""E7 — Theorem 15: the strongly connected Ω(n²) construction (Figures 3/4).

Runs the directed two-hop walk on the paper's strongly connected instance,
reports rounds / n², and contrasts the directed instance with undirected
processes at the same size (the paper's "directionality greatly impedes
discovery" message).
"""

from __future__ import annotations

from repro.analysis.lower_bounds import lower_bound_ratio_check
from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen
from repro.simulation import bounds
from repro.simulation.engine import measure_convergence_rounds

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count

SIZES = [8, 12, 16, 24, 32]
SMOKE_SIZES = [6, 8]


def test_e7_strongly_connected_lower_bound(benchmark, smoke):
    """Rounds on the Theorem-15 instance grow at least quadratically in n."""
    check = run_once(
        benchmark,
        lower_bound_ratio_check,
        "directed_pull",
        instance_factory=dgen.thm15_strong_lower_bound,
        sizes=SMOKE_SIZES if smoke else SIZES,
        bound=bounds.n_squared,
        trials=trial_count(smoke, 3),
        seed=BENCH_SEED,
        min_fraction_of_first=0.1,
    )
    rows = [
        {"n": n, "mean_rounds": r, "rounds/n^2": ratio}
        for n, r, ratio in zip(check.sizes, check.mean_rounds, check.ratios)
    ]
    print_table("E7 strongly connected lower-bound instance (Fig 3/4)", rows)
    print(f"pure power-law exponent: {check.power_fit_exponent:.2f}")
    if smoke:
        return
    assert check.power_fit_exponent > 1.2
    assert all(r > 0 for r in check.ratios)


def test_e7_directed_vs_undirected_separation(benchmark, smoke):
    """At equal sizes the directed instance takes far longer than undirected push/pull."""

    def measure():
        rows = []
        for n in [8, 12] if smoke else [16, 24, 32]:
            directed = measure_convergence_rounds(
                "directed_pull",
                dgen.thm15_strong_lower_bound(n),
                rng=BENCH_SEED,
                copy_graph=False,
            ).rounds
            push = measure_convergence_rounds(
                "push", gen.cycle_graph(n), rng=BENCH_SEED, copy_graph=False
            ).rounds
            pull = measure_convergence_rounds(
                "pull", gen.cycle_graph(n), rng=BENCH_SEED, copy_graph=False
            ).rounds
            rows.append(
                {
                    "n": n,
                    "directed_thm15_rounds": directed,
                    "undirected_push_rounds": push,
                    "undirected_pull_rounds": pull,
                    "directed/undirected": directed / max(push, pull),
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    print_table("E7 directed vs undirected separation", rows)
    # The separation widens with n and the directed instance is always slower.
    assert all(row["directed_thm15_rounds"] > row["undirected_pull_rounds"] for row in rows)
    assert rows[-1]["directed/undirected"] > rows[0]["directed/undirected"] * 0.8
