"""PR4 — sharded round execution shoot-out (``BENCH_PR4.json``).

Measures the sharded round engine (:mod:`repro.simulation.sharding`)
against the unsharded array backend at n ≥ 2048:

* **flooding end-to-end** — full convergence runs; flooding's row-union
  rounds are the heaviest per-round workload in the repo (Θ(n · m) IDs
  delivered), so they are where row sharding pays.  Sharded rounds are
  semantically identical to unsharded ones for flooding (the process is
  deterministic), so the speedup column compares equal work.  Even on a
  single-core host the in-process sharded path wins by confining each
  scatter to an L2-sized row block; on multi-core hosts the process-pool
  path (measured separately as mode="pool") adds core scaling on top.
* **push fixed-round throughput** — per-round wall time of the sharded
  gossip kernel vs the unsharded one at equal round counts (the gossip
  propose phase is O(n) per round, so this row mostly prices the
  shard-merge overhead, and pins that sharded trajectories are
  shard-count invariant).

Results are printed and written to ``BENCH_PR4.json`` at the repo root
(skipped under ``--smoke`` so CI never overwrites the recorded snapshot).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.baselines.flooding import NeighborhoodFlooding
from repro.core.push import PushDiscovery
from repro.graphs import generators as gen
from repro.simulation.sharding import ShardedProcess

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count

SIZES = [2048, 4096]
SMOKE_SIZES = [256]
SHARD_COUNTS = [2, 4, 8]
SMOKE_SHARD_COUNTS = [2]
PUSH_N = 2048
SMOKE_PUSH_N = 256
PUSH_ROUNDS = 120

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"


def _time_flooding(n: int, shards: int, parallel, reps: int) -> dict:
    """Best-of-``reps`` wall seconds for one full flooding convergence run."""
    best = float("inf")
    rounds = edges = 0
    for _ in range(reps):
        process = NeighborhoodFlooding(gen.cycle_graph(n), rng=BENCH_SEED, backend="array")
        start = time.perf_counter()
        if shards == 1:
            result = process.run_to_convergence()
        else:
            with ShardedProcess(process, shards=shards, parallel=parallel) as sharded:
                result = sharded.run_to_convergence()
        best = min(best, time.perf_counter() - start)
        rounds, edges = result.rounds, result.total_edges_added
    return {"seconds": best, "rounds": rounds, "edges": edges}


def _time_push(n: int, shards: int, rounds: int) -> dict:
    """Wall seconds for ``rounds`` sharded push rounds (serial shard path)."""
    process = PushDiscovery(gen.cycle_graph(n), rng=BENCH_SEED, backend="array")
    start = time.perf_counter()
    if shards == 1:
        for _ in range(rounds):
            process.step()
    else:
        with ShardedProcess(process, shards=shards, parallel=False) as sharded:
            for _ in range(rounds):
                sharded.step()
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "per_round_ms": seconds / rounds * 1e3,
        "edges": process.total_edges_added,
    }


def test_sharding_shootout(benchmark, smoke):
    """Sharded vs unsharded round execution at n >= 2048."""
    sizes = SMOKE_SIZES if smoke else SIZES
    shard_counts = SMOKE_SHARD_COUNTS if smoke else SHARD_COUNTS
    reps = trial_count(smoke, 2)

    def measure():
        results = {"flooding": [], "push": []}
        for n in sizes:
            flood_reps = reps if n <= 2048 else 1
            base = _time_flooding(n, 1, False, flood_reps)
            rows = [{"n": n, "shards": 1, "mode": "unsharded", **base, "speedup": 1.0}]
            for shards in shard_counts:
                timed = _time_flooding(n, shards, False, flood_reps)
                assert timed["rounds"] == base["rounds"]
                assert timed["edges"] == base["edges"]
                rows.append(
                    {
                        "n": n,
                        "shards": shards,
                        "mode": "in-process",
                        **timed,
                        "speedup": base["seconds"] / timed["seconds"],
                    }
                )
            results["flooding"].extend(rows)
        # One pool-path row at the largest size prices the multiprocess
        # round-trip honestly (it only wins when cores are available).
        n = sizes[-1]
        pool = _time_flooding(n, shard_counts[-1], True, 1)
        base_s = next(
            r["seconds"] for r in results["flooding"] if r["n"] == n and r["shards"] == 1
        )
        results["flooding"].append(
            {
                "n": n,
                "shards": shard_counts[-1],
                "mode": "pool",
                **pool,
                "speedup": base_s / pool["seconds"],
            }
        )
        push_n = SMOKE_PUSH_N if smoke else PUSH_N
        push_rounds = PUSH_ROUNDS if not smoke else 20
        push_base = _time_push(push_n, 1, push_rounds)
        results["push"].append({"n": push_n, "shards": 1, **push_base})
        for shards in shard_counts:
            results["push"].append({"n": push_n, "shards": shards, **_time_push(push_n, shards, push_rounds)})
        # Sharded push trajectories are shard-count invariant (k >= 2).
        sharded_edges = {r["edges"] for r in results["push"] if r["shards"] > 1}
        assert len(sharded_edges) == 1
        return results

    results = run_once(benchmark, measure)
    print_table(
        "PR4 sharded flooding (end-to-end convergence)",
        results["flooding"],
        ["n", "shards", "mode", "seconds", "rounds", "speedup"],
    )
    print_table(
        "PR4 sharded push (fixed rounds)",
        results["push"],
        ["n", "shards", "seconds", "per_round_ms", "edges"],
    )

    if smoke:
        return
    best = max(
        r["speedup"]
        for r in results["flooding"]
        if r["n"] >= 2048 and r["shards"] > 1
    )
    snapshot = {
        "pr": 4,
        "seed": BENCH_SEED,
        "sizes": sizes,
        "shard_counts": shard_counts,
        "cpus": os.cpu_count(),
        "push_rounds": PUSH_ROUNDS,
        "best_multi_shard_speedup": best,
        "results": results,
    }
    RESULTS_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"snapshot written to {RESULTS_PATH}")
    # Acceptance: sharded rounds beat unsharded rounds at n >= 2048 even
    # on this host (multi-core hosts add pool scaling on top).
    assert best > 1.0, f"no multi-shard speedup recorded (best {best:.3f}x)"
