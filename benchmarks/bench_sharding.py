"""PR4/PR5 — sharded round execution shoot-outs (``BENCH_PR4.json`` / ``BENCH_PR5.json``).

Measures the sharded round engine (:mod:`repro.simulation.sharding`)
against the unsharded array backend at n ≥ 2048:

* **flooding end-to-end** — full convergence runs; flooding's row-union
  rounds are the heaviest per-round workload in the repo (Θ(n · m) IDs
  delivered), so they are where row sharding pays.  Sharded rounds are
  semantically identical to unsharded ones for flooding (the process is
  deterministic), so the speedup column compares equal work.  Even on a
  single-core host the in-process sharded path wins by confining each
  scatter to an L2-sized row block; on multi-core hosts the process-pool
  path (measured separately as mode="pool") adds core scaling on top.
* **push fixed-round throughput** — per-round wall time of the sharded
  gossip kernel vs the unsharded one at equal round counts (the gossip
  propose phase is O(n) per round, so this row mostly prices the
  shard-merge overhead, and pins that sharded trajectories are
  shard-count invariant).

PR5 adds two measurements (``BENCH_PR5.json``):

* **incremental vs recompute closure maintenance** — maintaining packed
  all-pairs reachability under per-round edge batches via
  :class:`repro.graphs.closure.IncrementalClosure` (row-OR propagation per
  batch endpoint) against a full Warshall
  :func:`repro.graphs.bitset.transitive_closure_bits` recompute per batch
  — the machinery that makes the directed walk's closure-deficit tracking
  affordable at large n;
* **sharded full-registry shoot-out** — fixed-round per-round wall time of
  the newly shardable processes (directed two-hop walk, Name Dropper,
  Random Pointer Jump) sharded vs unsharded, plus a cross-shard-count
  trajectory-invariance assertion.

Results are printed and written to ``BENCH_PR4.json`` / ``BENCH_PR5.json``
at the repo root (skipped under ``--smoke`` so CI never overwrites the
recorded snapshots).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.baselines.flooding import NeighborhoodFlooding
from repro.baselines.name_dropper import NameDropper
from repro.baselines.pointer_jump import RandomPointerJump
from repro.core.directed import DirectedTwoHopWalk
from repro.core.push import PushDiscovery
from repro.graphs import bitset
from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen
from repro.graphs.closure import IncrementalClosure
from repro.simulation.io import atomic_write_text
from repro.simulation.sharding import ShardedProcess

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count

SIZES = [2048, 4096]
SMOKE_SIZES = [256]
SHARD_COUNTS = [2, 4, 8]
SMOKE_SHARD_COUNTS = [2]
PUSH_N = 2048
SMOKE_PUSH_N = 256
PUSH_ROUNDS = 120

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"

# --- PR5 knobs ------------------------------------------------------------- #
CLOSURE_SIZES = [512, 1024]
SMOKE_CLOSURE_SIZES = [128]
CLOSURE_BATCHES = 8
CLOSURE_BATCH_EDGES = 64
REGISTRY_N = 2048
SMOKE_REGISTRY_N = 256
REGISTRY_DEGREE = 128
REGISTRY_ROUNDS = 4
REGISTRY_SHARDS = [2, 4]
SMOKE_REGISTRY_SHARDS = [2]

PR5_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"


def _time_flooding(n: int, shards: int, parallel, reps: int) -> dict:
    """Best-of-``reps`` wall seconds for one full flooding convergence run."""
    best = float("inf")
    rounds = edges = 0
    for _ in range(reps):
        process = NeighborhoodFlooding(gen.cycle_graph(n), rng=BENCH_SEED, backend="array")
        start = time.perf_counter()
        if shards == 1:
            result = process.run_to_convergence()
        else:
            with ShardedProcess(process, shards=shards, parallel=parallel) as sharded:
                result = sharded.run_to_convergence()
        best = min(best, time.perf_counter() - start)
        rounds, edges = result.rounds, result.total_edges_added
    return {"seconds": best, "rounds": rounds, "edges": edges}


def _time_push(n: int, shards: int, rounds: int) -> dict:
    """Wall seconds for ``rounds`` sharded push rounds (serial shard path)."""
    process = PushDiscovery(gen.cycle_graph(n), rng=BENCH_SEED, backend="array")
    start = time.perf_counter()
    if shards == 1:
        for _ in range(rounds):
            process.step()
    else:
        with ShardedProcess(process, shards=shards, parallel=False) as sharded:
            for _ in range(rounds):
                sharded.step()
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "per_round_ms": seconds / rounds * 1e3,
        "edges": process.total_edges_added,
    }


def test_sharding_shootout(benchmark, smoke):
    """Sharded vs unsharded round execution at n >= 2048."""
    sizes = SMOKE_SIZES if smoke else SIZES
    shard_counts = SMOKE_SHARD_COUNTS if smoke else SHARD_COUNTS
    reps = trial_count(smoke, 2)

    def measure():
        results = {"flooding": [], "push": []}
        for n in sizes:
            flood_reps = reps if n <= 2048 else 1
            base = _time_flooding(n, 1, False, flood_reps)
            rows = [{"n": n, "shards": 1, "mode": "unsharded", **base, "speedup": 1.0}]
            for shards in shard_counts:
                timed = _time_flooding(n, shards, False, flood_reps)
                assert timed["rounds"] == base["rounds"]
                assert timed["edges"] == base["edges"]
                rows.append(
                    {
                        "n": n,
                        "shards": shards,
                        "mode": "in-process",
                        **timed,
                        "speedup": base["seconds"] / timed["seconds"],
                    }
                )
            results["flooding"].extend(rows)
        # One pool-path row at the largest size prices the multiprocess
        # round-trip honestly (it only wins when cores are available).
        n = sizes[-1]
        pool = _time_flooding(n, shard_counts[-1], True, 1)
        base_s = next(
            r["seconds"] for r in results["flooding"] if r["n"] == n and r["shards"] == 1
        )
        results["flooding"].append(
            {
                "n": n,
                "shards": shard_counts[-1],
                "mode": "pool",
                **pool,
                "speedup": base_s / pool["seconds"],
            }
        )
        push_n = SMOKE_PUSH_N if smoke else PUSH_N
        push_rounds = PUSH_ROUNDS if not smoke else 20
        push_base = _time_push(push_n, 1, push_rounds)
        results["push"].append({"n": push_n, "shards": 1, **push_base})
        for shards in shard_counts:
            results["push"].append({"n": push_n, "shards": shards, **_time_push(push_n, shards, push_rounds)})
        # Sharded push trajectories are shard-count invariant (k >= 2).
        sharded_edges = {r["edges"] for r in results["push"] if r["shards"] > 1}
        assert len(sharded_edges) == 1
        return results

    results = run_once(benchmark, measure)
    print_table(
        "PR4 sharded flooding (end-to-end convergence)",
        results["flooding"],
        ["n", "shards", "mode", "seconds", "rounds", "speedup"],
    )
    print_table(
        "PR4 sharded push (fixed rounds)",
        results["push"],
        ["n", "shards", "seconds", "per_round_ms", "edges"],
    )

    if smoke:
        return
    best = max(
        r["speedup"]
        for r in results["flooding"]
        if r["n"] >= 2048 and r["shards"] > 1
    )
    snapshot = {
        "pr": 4,
        "seed": BENCH_SEED,
        "sizes": sizes,
        "shard_counts": shard_counts,
        "cpus": os.cpu_count(),
        "push_rounds": PUSH_ROUNDS,
        "best_multi_shard_speedup": best,
        "results": results,
    }
    atomic_write_text(RESULTS_PATH, json.dumps(snapshot, indent=2) + "\n")
    print(f"snapshot written to {RESULTS_PATH}")
    # Acceptance: sharded rounds beat unsharded rounds at n >= 2048 even
    # on this host (multi-core hosts add pool scaling on top).
    assert best > 1.0, f"no multi-shard speedup recorded (best {best:.3f}x)"


# --------------------------------------------------------------------------- #
# PR5 — incremental closure maintenance + the fully-shardable registry
# --------------------------------------------------------------------------- #
def _random_digraph_bits(n: int, rng: np.random.Generator, density: float = 0.01):
    mat = rng.random((n, n)) < density
    np.fill_diagonal(mat, False)
    return bitset.pack_bool_matrix(mat)


def _closure_maintenance(n: int, reps: int) -> dict:
    """Best-of-``reps`` maintenance seconds over CLOSURE_BATCHES edge batches.

    Both strategies start from the same closed matrix; the timed region is
    the per-batch maintenance only (the one-off seed Warshall is shared).
    """
    rng = np.random.default_rng(BENCH_SEED)
    bits = _random_digraph_bits(n, rng)
    batches = []
    for _ in range(CLOSURE_BATCHES):
        us = rng.integers(0, n, size=CLOSURE_BATCH_EDGES).astype(np.int64)
        vs = rng.integers(0, n, size=CLOSURE_BATCH_EDGES).astype(np.int64)
        keep = us != vs
        batches.append((us[keep], vs[keep]))
    best_inc = best_re = float("inf")
    for _ in range(reps):
        inc = IncrementalClosure(bits.copy(), n)
        start = time.perf_counter()
        for us, vs in batches:
            inc.add_edges(us, vs)
        best_inc = min(best_inc, time.perf_counter() - start)

        current = bits.copy()
        recomputed = None
        start = time.perf_counter()
        for us, vs in batches:
            bitset.set_bits(current, us, vs)
            recomputed = bitset.transitive_closure_bits(current, n)
        best_re = min(best_re, time.perf_counter() - start)
        assert recomputed is not None and np.array_equal(inc.closure_bits(), recomputed)
    return {
        "n": n,
        "batches": CLOSURE_BATCHES,
        "batch_edges": CLOSURE_BATCH_EDGES,
        "incremental_s": best_inc,
        "recompute_s": best_re,
        "speedup": best_re / best_inc,
    }


def _registry_process(name: str, n: int):
    """One newly-shardable process on its benchmark workload.

    The payload baselines start from a dense Watts–Strogatz graph (average
    degree ``REGISTRY_DEGREE``) so the rounds are in the row-union regime
    where shard locality pays — on a sparse start the O(n²/8) delta
    accumulator dominates and sharding is pure overhead, exactly like the
    push row of the PR4 table.  The directed walk's gossip-class rounds are
    O(n), so its row prices the shard-merge overhead.
    """
    if name == "directed_walk":
        return DirectedTwoHopWalk(
            dgen.thm15_strong_lower_bound(n), rng=BENCH_SEED, backend="array"
        )
    rng = np.random.default_rng(BENCH_SEED)
    graph = gen.watts_strogatz_graph(n, REGISTRY_DEGREE, 0.05, rng)
    if name == "name_dropper":
        return NameDropper(graph, rng=BENCH_SEED, backend="array")
    return RandomPointerJump(graph, rng=BENCH_SEED, backend="array")


def _time_registry_rounds(name: str, n: int, shards: int, rounds: int) -> dict:
    """Wall seconds for ``rounds`` rounds of one newly-shardable process."""
    process = _registry_process(name, n)
    per_round = []
    start = time.perf_counter()
    if shards == 1:
        for _ in range(rounds):
            per_round.append(process.step().num_added)
    else:
        with ShardedProcess(process, shards=shards, parallel=False) as sharded:
            for _ in range(rounds):
                per_round.append(sharded.step().num_added)
    seconds = time.perf_counter() - start
    return {
        "process": name,
        "n": n,
        "shards": shards,
        "seconds": seconds,
        "per_round_ms": seconds / rounds * 1e3,
        "edges": process.total_edges_added,
        "per_round_added": per_round,
    }


def test_pr5_incremental_closure_and_sharded_registry(benchmark, smoke):
    """PR5: incremental-vs-recompute closure + the full registry sharded."""
    closure_sizes = SMOKE_CLOSURE_SIZES if smoke else CLOSURE_SIZES
    registry_n = SMOKE_REGISTRY_N if smoke else REGISTRY_N
    shard_counts = SMOKE_REGISTRY_SHARDS if smoke else REGISTRY_SHARDS
    reps = trial_count(smoke, 3)

    def measure():
        results = {"closure": [], "registry": []}
        for n in closure_sizes:
            results["closure"].append(_closure_maintenance(n, reps))
        for name in ("directed_walk", "name_dropper", "pointer_jump"):
            rows = [_time_registry_rounds(name, registry_n, 1, REGISTRY_ROUNDS)]
            base_s = rows[0]["seconds"]
            for shards in shard_counts:
                timed = _time_registry_rounds(name, registry_n, shards, REGISTRY_ROUNDS)
                timed["speedup"] = base_s / timed["seconds"]
                rows.append(timed)
            # Per-round added-edge counts agree across shard counts (the
            # exact edge-trajectory identity is pinned by
            # tests/test_sharding.py; under --smoke only one shard count
            # runs, so this comparison is trivially satisfied there).
            sharded_rounds = {tuple(r["per_round_added"]) for r in rows[1:]}
            assert len(sharded_rounds) == 1
            rows[0]["speedup"] = 1.0
            results["registry"].extend(rows)
        return results

    results = run_once(benchmark, measure)
    print_table(
        "PR5 closure maintenance under edge batches (incremental vs recompute)",
        results["closure"],
        ["n", "batches", "batch_edges", "incremental_s", "recompute_s", "speedup"],
    )
    print_table(
        "PR5 newly-shardable registry (fixed rounds, in-process shards)",
        results["registry"],
        ["process", "n", "shards", "seconds", "per_round_ms", "speedup"],
    )

    # Acceptance: incremental maintenance beats recompute at every size.
    worst = min(r["speedup"] for r in results["closure"])
    assert worst > 1.0, f"incremental closure slower than recompute ({worst:.3f}x)"

    if smoke:
        return
    snapshot = {
        "pr": 5,
        "seed": BENCH_SEED,
        "cpus": os.cpu_count(),
        "closure_sizes": closure_sizes,
        "registry_n": registry_n,
        "registry_rounds": REGISTRY_ROUNDS,
        "shard_counts": shard_counts,
        "best_closure_speedup": max(r["speedup"] for r in results["closure"]),
        "results": results,
    }
    atomic_write_text(PR5_RESULTS_PATH, json.dumps(snapshot, indent=2) + "\n")
    print(f"snapshot written to {PR5_RESULTS_PATH}")
