"""E13 — ablation: activation schedules (synchronous vs asynchronous-style activation).

The paper states its bounds in synchronous rounds where every node acts.
This ablation measures what changes when activation is relaxed:

* Bernoulli(q) participation — only a q-fraction of nodes acts per round;
  total *work* (node activations) to convergence should stay roughly flat
  while rounds scale like 1/q.
* One-node-per-tick (asynchronous-style) activation — ticks/n should be
  comparable to the synchronous round count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.push import PushDiscovery
from repro.core.scheduler import BernoulliActivation, PoissonLikeActivation, ScheduledProcess
from repro.graphs import generators as gen

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count

N = 48
FRACTIONS = [1.0, 0.5, 0.25]


def _mean_over_trials(make_runner, trials=3):
    values = []
    for t in range(trials):
        values.append(make_runner(BENCH_SEED + t))
    return float(np.mean(values))


def test_e13_bernoulli_participation_work_conservation(benchmark, smoke):
    """Rounds grow like 1/q but total activations (work) stay within ~2x of synchronous."""

    def measure():
        rows = []
        for q in FRACTIONS:
            per_trial = []
            for t in range(trial_count(smoke, 3)):
                graph = gen.cycle_graph(N)
                proc = PushDiscovery(graph, rng=BENCH_SEED + t)
                if q < 1.0:
                    ScheduledProcess(proc, BernoulliActivation(q))
                result = proc.run_to_convergence(max_rounds=500_000)
                # messages_sent counts 2 per activation, so activations = messages / 2
                per_trial.append((result.rounds, result.total_messages / 2.0))
            rows.append(
                {
                    "participation q": q,
                    "rounds_mean": float(np.mean([r for r, _ in per_trial])),
                    "activations_mean": float(np.mean([w for _, w in per_trial])),
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    base_rounds = rows[0]["rounds_mean"]
    base_work = rows[0]["activations_mean"]
    for row in rows:
        row["rounds/base"] = row["rounds_mean"] / base_rounds
        row["work/base"] = row["activations_mean"] / base_work
    print_table(f"E13 Bernoulli activation ablation (push, n={N})", rows)
    # Rounds inflate roughly like 1/q ...
    assert rows[-1]["rounds/base"] > 1.8
    # ... but the total work stays within a small factor of the synchronous run.
    assert rows[-1]["work/base"] < 2.5


def test_e13_async_ticks_match_synchronous_rounds(benchmark, smoke):
    """One-node-per-tick activation needs ~n times more ticks, i.e. similar total work."""

    trials = trial_count(smoke, 3)

    def measure():
        sync_rounds = _mean_over_trials(
            lambda s: PushDiscovery(gen.cycle_graph(N), rng=s).run_to_convergence().rounds,
            trials=trials,
        )

        def async_ticks(seed):
            graph = gen.cycle_graph(N)
            proc = PushDiscovery(graph, rng=seed)
            wrapped = ScheduledProcess(proc, PoissonLikeActivation())
            return wrapped.run_to_convergence(max_rounds=2_000_000).rounds

        ticks = _mean_over_trials(async_ticks, trials=trials)
        return [
            {
                "model": "synchronous rounds",
                "count": sync_rounds,
                "normalized (per n activations)": sync_rounds,
            },
            {
                "model": "async ticks / n",
                "count": ticks,
                "normalized (per n activations)": ticks / N,
            },
        ]

    rows = run_once(benchmark, measure)
    print_table(f"E13 synchronous vs asynchronous activation (push, n={N})", rows)
    sync = rows[0]["normalized (per n activations)"]
    asyn = rows[1]["normalized (per n activations)"]
    assert 0.3 < asyn / sync < 3.0
