"""E4 — Figure 1(c): non-monotonicity of the expected convergence time.

Regenerates the figure's comparison with exact (absorbing-Markov-chain)
expectations cross-checked by Monte-Carlo simulation:

* the 4-edge graph (triangle + pendant) versus its 3-edge triangle
  subgraph, exactly as the caption states;
* the same-node-set pair (4-cycle vs diamond) where adding one edge
  strictly increases the expected convergence time.
"""

from __future__ import annotations

import pytest

from repro.analysis.nonmonotonicity import (
    exact_expected_convergence_time,
    monte_carlo_expected_convergence_time,
    nonmonotonicity_gap,
)
from repro.graphs import generators as gen

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count


def test_e4_exact_gaps(benchmark):
    """Exact expected convergence times for both non-monotone comparisons."""
    gap = run_once(benchmark, nonmonotonicity_gap, "push")
    rows = [
        {"graph": "fig1c 4-edge (triangle+pendant)", "exact_E[T]": gap["fig1c_four_edge"]},
        {"graph": "fig1c 3-edge subgraph (triangle)", "exact_E[T]": gap["fig1c_triangle"]},
        {"graph": "cycle C4", "exact_E[T]": gap["pair_cycle4"]},
        {"graph": "diamond (C4 + chord)", "exact_E[T]": gap["pair_diamond"]},
    ]
    print_table("E4 exact expected convergence times (push)", rows)
    print(f"fig1c gap = {gap['fig1c_gap']:.4f}, same-node-set gap = {gap['pair_gap']:.4f}")
    assert gap["fig1c_gap"] > 0
    assert gap["pair_gap"] > 0


def test_e4_monte_carlo_cross_check(benchmark, smoke):
    """Monte-Carlo estimates agree with the exact values within a few standard errors."""

    trials = trial_count(smoke, 3000, smoke_cap=200)

    def measure():
        results = {}
        for name, graph in [
            ("paw", gen.fig1c_nonmonotone()),
            ("cycle4", gen.nonmonotone_supergraph_pair()[0]),
            ("diamond", gen.nonmonotone_supergraph_pair()[1]),
        ]:
            exact = exact_expected_convergence_time(graph, "push")
            mc, sem = monte_carlo_expected_convergence_time(
                graph, "push", trials=trials, seed=BENCH_SEED
            )
            results[name] = (exact, mc, sem)
        return results

    results = run_once(benchmark, measure)
    rows = [
        {"graph": name, "exact": e, "monte_carlo": m, "stderr": s}
        for name, (e, m, s) in results.items()
    ]
    print_table(f"E4 exact vs Monte-Carlo (push, {trials} trials)", rows)
    for name, (exact, mc, sem) in results.items():
        assert abs(exact - mc) < max(5 * sem, 0.2), f"{name}: exact {exact} vs MC {mc}"


def test_e4_pull_process_gap(benchmark):
    """The same non-monotone comparison for the two-hop walk."""
    gap = run_once(benchmark, nonmonotonicity_gap, "pull")
    print_table(
        "E4 pull-process expectations",
        [
            {"graph": "fig1c 4-edge", "exact_E[T]": gap["fig1c_four_edge"]},
            {"graph": "fig1c triangle", "exact_E[T]": gap["fig1c_triangle"]},
        ],
    )
    assert gap["fig1c_gap"] > 0
