"""Degradation study: discovery time when the synchronous idealization is relaxed.

The paper's analysis assumes lock-step rounds with instant, reliable
delivery.  The event-queue engine (PR 6) drops those assumptions one at a
time; this benchmark quantifies what each costs.  All runs use the push
protocol on a cycle and report *tick inflation*: mean ticks to full
discovery divided by the synchronous simulator's mean rounds on the same
seeds.

Axes:

* ``parity``   — deterministic sub-tick latency, no faults.  The async
  engine must replay the synchronous run draw for draw, so the inflation
  is exactly 1.0 (asserted per seed, not just on the mean).
* ``jitter``   — uniform per-message latency of growing width.  Once
  messages straddle tick boundaries the engines decouple, yet push barely
  slows down: a late introduction is simply used a tick later, so the
  inflation stays near 1 even at multi-tick latencies.
* ``drop``     — iid message loss at growing rates (no liveness pings:
  nobody is dead, eviction would only thrash).
* ``churn``    — Poisson leave/rejoin with liveness pings evicting dead
  contacts; convergence is judged among the alive nodes.

Full-size results are written to ``BENCH_PR6.json`` at the repo root
(skipped under ``--smoke`` so CI never overwrites the recorded snapshot).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graphs import generators as gen
from repro.network import (
    AsyncNetworkSimulator,
    ChurnSchedule,
    DropUniform,
    FixedLatency,
    NetworkSimulator,
    UniformLatency,
)
from repro.simulation.io import atomic_write_text

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count

N = 32
MAX_TICKS = 20_000
JITTER_WIDTHS = [0.5, 1.5, 3.0]
DROP_RATES = [0.05, 0.1, 0.2]
CHURN_RATES = [0.01, 0.03]

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"


def _async_ticks(n: int, seed: int, **kwargs) -> tuple[int, bool]:
    sim = AsyncNetworkSimulator(
        gen.cycle_graph(n),
        protocol="push",
        rng=np.random.default_rng(seed),
        **kwargs,
    )
    sim.run_to_convergence(max_ticks=MAX_TICKS)
    return sim.stats.ticks, sim.is_converged()


def test_async_degradation(benchmark, smoke):
    n = 12 if smoke else N
    trials = trial_count(smoke, 3)
    seeds = [BENCH_SEED + t for t in range(trials)]

    def measure():
        sync_rounds = []
        for seed in seeds:
            sim = NetworkSimulator(
                gen.cycle_graph(n), protocol="push", rng=np.random.default_rng(seed)
            )
            sim.run_to_convergence(max_rounds=MAX_TICKS)
            assert sim.is_converged()
            sync_rounds.append(sim.stats.rounds)
        baseline = float(np.mean(sync_rounds))

        rows = [
            {
                "axis": "sync",
                "setting": "-",
                "mean_ticks": baseline,
                "converged": trials,
                "inflation": 1.0,
            }
        ]

        # Parity: latency below one tick, no faults -> exact sync replay.
        parity = []
        for seed, expected in zip(seeds, sync_rounds):
            ticks, converged = _async_ticks(n, seed, latency=FixedLatency(0.45))
            assert converged
            assert ticks == expected, (
                f"async parity broken: {ticks} ticks vs {expected} sync rounds (seed {seed})"
            )
            parity.append(ticks)
        rows.append(
            {
                "axis": "parity",
                "setting": "fixed 0.45",
                "mean_ticks": float(np.mean(parity)),
                "converged": trials,
                "inflation": float(np.mean(parity)) / baseline,
            }
        )

        for width in JITTER_WIDTHS:
            ticks = [
                _async_ticks(n, seed, latency=UniformLatency(0.05, width)) for seed in seeds
            ]
            rows.append(
                {
                    "axis": "jitter",
                    "setting": f"U(0.05, {width})",
                    "mean_ticks": float(np.mean([t for t, _ in ticks])),
                    "converged": sum(c for _, c in ticks),
                    "inflation": float(np.mean([t for t, _ in ticks])) / baseline,
                }
            )

        for rate in DROP_RATES:
            ticks = [
                _async_ticks(
                    n, seed, latency=FixedLatency(0.45), failures=DropUniform(rate)
                )
                for seed in seeds
            ]
            rows.append(
                {
                    "axis": "drop",
                    "setting": f"p={rate}",
                    "mean_ticks": float(np.mean([t for t, _ in ticks])),
                    "converged": sum(c for _, c in ticks),
                    "inflation": float(np.mean([t for t, _ in ticks])) / baseline,
                }
            )

        for rate in CHURN_RATES:
            ticks = []
            for seed in seeds:
                churn = ChurnSchedule.poisson(
                    n, rate=rate, horizon=float(MAX_TICKS), seed=seed + 1, downtime=5.0
                )
                ticks.append(
                    _async_ticks(
                        n,
                        seed,
                        latency=FixedLatency(0.45),
                        churn=churn,
                        ping_interval=1.0,
                        ping_timeout=2.0,
                    )
                )
            rows.append(
                {
                    "axis": "churn",
                    "setting": f"rate={rate}",
                    "mean_ticks": float(np.mean([t for t, _ in ticks])),
                    "converged": sum(c for _, c in ticks),
                    "inflation": float(np.mean([t for t, _ in ticks])) / baseline,
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    print_table(f"async degradation vs sync baseline (push on a {n}-cycle)", rows)
    by_key = {(row["axis"], row["setting"]): row for row in rows}

    # Every configuration still reaches full discovery within the budget.
    assert all(row["converged"] == trials for row in rows)
    # The degenerate configuration is exactly the synchronous run.
    assert by_key[("parity", "fixed 0.45")]["inflation"] == 1.0
    if smoke:
        # The magnitude assertions below are calibrated for the full
        # size; a single tiny-n trial is too noisy to pin them.
        return
    # The headline finding: push is latency-tolerant but loss-sensitive.
    # A late introduction is simply used a tick later (nodes keep
    # initiating every tick regardless of what is in flight), so even
    # multi-tick jitter stays within ~10% of the baseline — while losing
    # a fifth of the messages costs a clearly measurable factor.
    assert by_key[("jitter", f"U(0.05, {JITTER_WIDTHS[-1]})")]["inflation"] < 1.2
    assert by_key[("drop", f"p={DROP_RATES[-1]}")]["inflation"] > 1.2

    snapshot = {
        "pr": 6,
        "seed": BENCH_SEED,
        "n": n,
        "trials": trials,
        "protocol": "push",
        "results": rows,
    }
    atomic_write_text(RESULTS_PATH, json.dumps(snapshot, indent=2) + "\n")
    print(f"snapshot written to {RESULTS_PATH}")
