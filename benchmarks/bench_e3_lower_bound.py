"""E3 — Theorems 9 and 13: Ω(n log k) lower bound with k missing edges.

Two workloads:

* dense starts — the complete graph minus a matching of k edges — where the
  lower bound says the last missing edges still take Ω(n log k) rounds;
* sparse starts (cycles) where k = Θ(n²) and the bound becomes Ω(n log n).

The benchmark reports rounds / (n ln k) per size; the Ω-shape check is that
the ratio does not collapse as n grows.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.lower_bounds import lower_bound_ratio_check
from repro.graphs import generators as gen
from repro.simulation import bounds

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count

SIZES = [16, 32, 64, 96]
SMOKE_SIZES = [8, 12]


@pytest.mark.parametrize("process", ["push", "pull"])
def test_e3_dense_start_missing_matching(benchmark, process, smoke):
    """Complete graph minus a matching of n/4 edges: rounds / (n ln k) stays bounded below."""

    def factory(n: int):
        return gen.complete_minus_matching(n, max(1, n // 4))

    check = run_once(
        benchmark,
        lower_bound_ratio_check,
        process,
        instance_factory=factory,
        sizes=SMOKE_SIZES if smoke else SIZES,
        bound=lambda n: bounds.n_log_k(n, max(1.0, n / 4.0)),
        trials=trial_count(smoke, 3),
        seed=BENCH_SEED,
    )
    rows = [
        {"n": n, "mean_rounds": r, "rounds/(n ln k)": ratio}
        for n, r, ratio in zip(check.sizes, check.mean_rounds, check.ratios)
    ]
    print_table(f"E3 dense-start lower bound ({process})", rows)
    print(f"pure power-law exponent: {check.power_fit_exponent:.2f}")
    if smoke:
        return  # tiny sizes / single trials cannot support the shape assertions
    assert check.non_vanishing
    assert check.power_fit_exponent > 0.6


@pytest.mark.parametrize("process", ["push", "pull"])
def test_e3_sparse_start_n_log_n(benchmark, process, smoke):
    """Sparse (cycle) starts: measured rounds stay above a constant times n ln n."""
    check = run_once(
        benchmark,
        lower_bound_ratio_check,
        process,
        instance_factory=gen.cycle_graph,
        sizes=SMOKE_SIZES if smoke else SIZES,
        bound=bounds.n_log_n,
        trials=trial_count(smoke, 3),
        seed=BENCH_SEED + 1,
    )
    rows = [
        {"n": n, "mean_rounds": r, "rounds/(n ln n)": ratio}
        for n, r, ratio in zip(check.sizes, check.mean_rounds, check.ratios)
    ]
    print_table(f"E3 sparse-start lower bound ({process})", rows)
    if smoke:
        return
    assert check.non_vanishing
    assert min(check.ratios) > 0.2
