"""E10 — baselines: rounds vs per-round bandwidth against Name Dropper / Pointer Jump / flooding.

The paper positions the gossip processes as the O(log n)-bits-per-message
alternative to prior discovery algorithms that finish in polylog rounds but
ship Θ(n)-size messages.  This benchmark regenerates that trade-off table:
for each algorithm, the convergence rounds, the total bits, and the peak
per-node per-round bit budget — on both graph backends, now that the
baselines run on the packed bitset substrate (PR 3).

``test_e10_backend_shootout`` times one baseline round per backend at the
largest n on an identical mid-density state: the packed flooding round
(one pass of row unions) must beat the list-backend triple loop by ≥5×
at n=1024.  Full-size results are written to ``BENCH_PR3.json`` at the
repo root (skipped under ``--smoke`` so CI never overwrites the recorded
snapshot).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.flooding import NeighborhoodFlooding
from repro.baselines.name_dropper import NameDropper
from repro.baselines.pointer_jump import RandomPointerJump
from repro.graphs import generators as gen
from repro.graphs.array_adjacency import ArrayGraph
from repro.network.message import id_bits_for
from repro.network.simulator import NetworkSimulator
from repro.simulation.engine import measure_convergence_rounds
from repro.simulation.io import atomic_write_text

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count

N = 64
ALGORITHMS = ["push", "pull", "name_dropper", "pointer_jump", "flooding"]

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"

SHOOTOUT_PROCESSES = [
    ("flooding", NeighborhoodFlooding),
    ("name_dropper", NameDropper),
    ("pointer_jump", RandomPointerJump),
]


@pytest.mark.parametrize("backend", ["list", "array"])
def test_e10_rounds_vs_bits_tradeoff(benchmark, smoke, backend):
    """Rounds and message-bit totals for every algorithm on the same starting graph."""

    n = 16 if smoke else N

    def measure():
        rows = []
        for name in ALGORITHMS:
            trials = []
            for t in range(trial_count(smoke, 3)):
                graph = gen.cycle_graph(n)
                result = measure_convergence_rounds(
                    name, graph, rng=BENCH_SEED + t, copy_graph=False, backend=backend
                )
                trials.append((result.rounds, result.total_bits, result.total_messages))
            rounds = float(np.mean([t[0] for t in trials]))
            bits = float(np.mean([t[1] for t in trials]))
            msgs = float(np.mean([t[2] for t in trials]))
            rows.append(
                {
                    "algorithm": name,
                    "rounds": rounds,
                    "total_bits": bits,
                    "bits_per_round_per_node": bits / rounds / n,
                    "messages": msgs,
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    print_table(f"E10 rounds vs bandwidth on a {n}-cycle (backend={backend})", rows)
    by_name = {row["algorithm"]: row for row in rows}
    # Round ordering: flooding <= name_dropper << push/pull.
    assert by_name["flooding"]["rounds"] <= by_name["name_dropper"]["rounds"]
    assert by_name["name_dropper"]["rounds"] < by_name["push"]["rounds"]
    assert by_name["name_dropper"]["rounds"] < by_name["pull"]["rounds"]
    # Bandwidth ordering (per node per round): push/pull are O(log n) bits,
    # the baselines are not.
    id_bits = id_bits_for(n)
    assert by_name["push"]["bits_per_round_per_node"] <= 2 * id_bits
    assert by_name["pull"]["bits_per_round_per_node"] <= 3 * id_bits
    assert by_name["flooding"]["bits_per_round_per_node"] > 10 * id_bits


def test_e10_message_level_bandwidth(benchmark, smoke):
    """The message-passing simulator confirms the per-node bit budgets."""

    n = 16 if smoke else N

    def measure():
        rows = []
        for protocol in ["push", "pull", "name_dropper"]:
            sim = NetworkSimulator(gen.cycle_graph(n), protocol=protocol, rng=BENCH_SEED)
            sim.run_to_convergence(max_rounds=50_000)
            rows.append(
                {
                    "protocol": protocol,
                    "rounds": sim.stats.rounds,
                    "max_bits_per_node_round": sim.max_bits_per_node_round(),
                    "max_round_mean_bits_per_node": sim.max_round_mean_bits_per_node(),
                    "messages_sent": sim.stats.messages_sent,
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    print_table(f"E10 message-level accounting on a {n}-cycle", rows)
    by_name = {row["protocol"]: row for row in rows}
    id_bits = id_bits_for(n)
    # Sender-side budgets hold for the true per-node max: push is two IDs.
    assert by_name["push"]["max_bits_per_node_round"] <= 2 * id_bits
    # Pull's *requester* budget is O(log n) (request + connect + its own
    # reply), but a popular node answers every request that lands on it,
    # so the true per-node max scales with the request in-degree; the
    # mean-load claim is the per-node-average one.
    assert by_name["pull"]["max_round_mean_bits_per_node"] <= 4 * id_bits
    assert by_name["pull"]["max_bits_per_node_round"] <= (n + 2) * id_bits
    assert by_name["name_dropper"]["max_bits_per_node_round"] > 4 * id_bits


def _mid_density_states(n: int, warm_rounds: int):
    """A cycle flooded for ``warm_rounds`` rounds, as an aligned backend pair.

    Flooding roughly doubles the knowledge radius per round, so after r
    rounds every node knows ~2^(r+1) others — dense enough that the list
    backend's O(Σ deg²) Python triple loop hurts, while many rounds still
    remain to convergence.  The list state is rebuilt canonically and the
    array state derived from it, so both backends start with identical
    neighbour-row order (identical seeded draws).
    """
    proc = NeighborhoodFlooding(ArrayGraph(n, gen.cycle_graph(n).edge_list()), rng=BENCH_SEED)
    for _ in range(warm_rounds):
        proc.step()
    state_list = proc.graph.to_dynamic()
    return {"list": state_list, "array": ArrayGraph.from_graph(state_list)}


def _time_one_round(process_cls, state, reps: int) -> dict:
    """Best-of-``reps`` seconds for one round from a fresh copy of ``state``."""
    best = float("inf")
    result = None
    for _ in range(reps):
        proc = process_cls(state.copy(), rng=BENCH_SEED)
        start = time.perf_counter()
        result = proc.step()
        best = min(best, time.perf_counter() - start)
    return {
        "seconds": best,
        "messages": result.messages_sent,
        "bits": result.bits_sent,
        "added": result.num_added,
    }


def test_e10_backend_shootout(benchmark, smoke):
    """List-vs-array single-round shoot-out for all three baselines at the largest n."""

    n = 256 if smoke else 1024
    warm_rounds = 3 if smoke else 4
    reps = trial_count(smoke, 3)

    def measure():
        states = _mid_density_states(n, warm_rounds)
        rows = []
        for name, process_cls in SHOOTOUT_PROCESSES:
            list_run = _time_one_round(process_cls, states["list"], reps)
            array_run = _time_one_round(process_cls, states["array"], reps)
            # Same seed, same state: the round must agree across backends.
            assert array_run["messages"] == list_run["messages"]
            assert array_run["bits"] == list_run["bits"]
            assert array_run["added"] == list_run["added"]
            rows.append(
                {
                    "process": name,
                    "n": n,
                    "list_round_s": list_run["seconds"],
                    "array_round_s": array_run["seconds"],
                    "speedup": list_run["seconds"] / array_run["seconds"],
                    "round_messages": list_run["messages"],
                    "round_added": list_run["added"],
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    print_table(f"E10 list-vs-array baseline round at n={n}", rows)
    by_name = {row["process"]: row for row in rows}
    if smoke:
        return
    snapshot = {
        "pr": 3,
        "seed": BENCH_SEED,
        "n": n,
        "warm_rounds": warm_rounds,
        "results": {row["process"]: row for row in rows},
    }
    atomic_write_text(RESULTS_PATH, json.dumps(snapshot, indent=2) + "\n")
    print(f"snapshot written to {RESULTS_PATH}")
    # Acceptance: the packed flooding round (one pass of row unions) beats
    # the list-backend Python triple loop by >=5x at n=1024.
    assert by_name["flooding"]["speedup"] >= 5.0
