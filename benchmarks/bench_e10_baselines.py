"""E10 — baselines: rounds vs per-round bandwidth against Name Dropper / Pointer Jump / flooding.

The paper positions the gossip processes as the O(log n)-bits-per-message
alternative to prior discovery algorithms that finish in polylog rounds but
ship Θ(n)-size messages.  This benchmark regenerates that trade-off table:
for each algorithm, the convergence rounds, the total bits, and the peak
per-node per-round bit budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.network.message import id_bits_for
from repro.network.simulator import NetworkSimulator
from repro.simulation.engine import measure_convergence_rounds

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count

N = 64
ALGORITHMS = ["push", "pull", "name_dropper", "pointer_jump", "flooding"]


def test_e10_rounds_vs_bits_tradeoff(benchmark, smoke):
    """Rounds and message-bit totals for every algorithm on the same starting graph."""

    n = 16 if smoke else N

    def measure():
        rows = []
        for name in ALGORITHMS:
            trials = []
            for t in range(trial_count(smoke, 3)):
                graph = gen.cycle_graph(n)
                result = measure_convergence_rounds(
                    name, graph, rng=BENCH_SEED + t, copy_graph=False
                )
                trials.append((result.rounds, result.total_bits, result.total_messages))
            rounds = float(np.mean([t[0] for t in trials]))
            bits = float(np.mean([t[1] for t in trials]))
            msgs = float(np.mean([t[2] for t in trials]))
            rows.append(
                {
                    "algorithm": name,
                    "rounds": rounds,
                    "total_bits": bits,
                    "bits_per_round_per_node": bits / rounds / n,
                    "messages": msgs,
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    print_table(f"E10 rounds vs bandwidth on a {n}-cycle", rows)
    by_name = {row["algorithm"]: row for row in rows}
    # Round ordering: flooding <= name_dropper << push/pull.
    assert by_name["flooding"]["rounds"] <= by_name["name_dropper"]["rounds"]
    assert by_name["name_dropper"]["rounds"] < by_name["push"]["rounds"]
    assert by_name["name_dropper"]["rounds"] < by_name["pull"]["rounds"]
    # Bandwidth ordering (per node per round): push/pull are O(log n) bits,
    # the baselines are not.
    id_bits = id_bits_for(n)
    assert by_name["push"]["bits_per_round_per_node"] <= 2 * id_bits
    assert by_name["pull"]["bits_per_round_per_node"] <= 3 * id_bits
    assert by_name["flooding"]["bits_per_round_per_node"] > 10 * id_bits


def test_e10_message_level_bandwidth(benchmark, smoke):
    """The message-passing simulator confirms the per-node bit budgets."""

    n = 16 if smoke else N

    def measure():
        rows = []
        for protocol in ["push", "pull", "name_dropper"]:
            sim = NetworkSimulator(gen.cycle_graph(n), protocol=protocol, rng=BENCH_SEED)
            sim.run_to_convergence(max_rounds=50_000)
            rows.append(
                {
                    "protocol": protocol,
                    "rounds": sim.stats.rounds,
                    "max_bits_per_node_round": sim.max_bits_per_node_round(),
                    "messages_sent": sim.stats.messages_sent,
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    print_table(f"E10 message-level accounting on a {n}-cycle", rows)
    by_name = {row["protocol"]: row for row in rows}
    id_bits = id_bits_for(n)
    assert by_name["push"]["max_bits_per_node_round"] <= 2 * id_bits
    assert by_name["pull"]["max_bits_per_node_round"] <= 3 * id_bits + id_bits
    assert by_name["name_dropper"]["max_bits_per_node_round"] > 4 * id_bits
