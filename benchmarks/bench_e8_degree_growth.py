"""E8 — §3.1 proof engine: minimum-degree growth phases take O(n log n) rounds each.

Both undirected upper bounds rest on the claim that the minimum degree
grows by a constant factor (9/8) every O(n log n) rounds.  This benchmark
measures the phase decomposition on several families and reports each
phase's length normalised by n ln n, which must stay bounded by a small
constant, and the number of phases, which must stay O(log n).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.degree_growth import measure_degree_growth_phases
from repro.graphs import generators as gen

from _bench_helpers import BENCH_SEED, print_table, run_once

CASES = [
    ("cycle", lambda n: gen.cycle_graph(n)),
    ("hypercube", lambda n: gen.hypercube_graph(int(math.log2(n)))),
    ("erdos_renyi", lambda n: gen.erdos_renyi_graph(
        n, 2.0 * math.log(n) / n, __import__("numpy").random.default_rng(BENCH_SEED), True
    )),
]
SIZES = [32, 64]


@pytest.mark.parametrize("process", ["push", "pull"])
@pytest.mark.parametrize("family,factory", CASES, ids=[c[0] for c in CASES])
def test_e8_degree_growth_phases(benchmark, process, family, factory):
    """Phase lengths normalised by n ln n stay bounded; phase count stays logarithmic."""

    def measure():
        out = []
        for n in SIZES:
            phases = measure_degree_growth_phases(
                factory(n), process=process, rng=BENCH_SEED, growth_factor=9.0 / 8.0
            )
            out.append((n, phases))
        return out

    results = run_once(benchmark, measure)
    rows = []
    for n, phases in results:
        rows.append(
            {
                "n": n,
                "phases": len(phases),
                "max_phase/(n ln n)": max(p.normalized_length for p in phases),
                "mean_phase/(n ln n)": sum(p.normalized_length for p in phases) / len(phases),
                "total_rounds": phases[-1].end_round,
            }
        )
    print_table(f"E8 degree growth phases ({process} on {family})", rows)
    for row, n in zip(rows, SIZES):
        assert row["phases"] >= 1
        # O(log n) phases for a 9/8 growth factor: log_{9/8}(n) + slack.
        assert row["phases"] <= math.log(n) / math.log(9 / 8) + 5
        # Each phase is O(n log n) with a modest constant at these sizes.
        assert row["max_phase/(n ln n)"] < 6.0
