"""PR2 — microbenchmarks for the word-packed bitset kernels.

Times the three hot set-algebra paths the convergence sweeps live on, each
against its pre-PR2 implementation, at n ∈ {256, 1024, 4096}:

* **membership batch ops** — batched edge membership get/set on the packed
  ``uint64`` rows vs the old n×n ``bool`` matrix (the bool gather is
  already a single fancy index, so the headline win here is the 8× memory
  reduction, which is what lets the array backend scale);
* **closure** — all-pairs reachability via the Warshall bitset kernel
  (:func:`repro.graphs.closure.reachability_bits`) vs the old per-node
  Python BFS (``reachability_matrix_bfs``), on random out-degree-4
  digraphs (the BFS oracle is only timed up to n=1024 — beyond that it is
  minutes-slow, which is the point);
* **convergence check** — the per-round minimum-degree predicate through
  the process's incremental counter cache vs the old recompute-a-degree-
  copy-every-round style.

Results are printed and written to ``BENCH_PR2.json`` at the repo root
(skipped under ``--smoke`` so CI never overwrites the recorded snapshot).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.push import PushDiscovery
from repro.graphs import bitset, closure
from repro.graphs import generators as gen
from repro.graphs.adjacency import DynamicDiGraph
from repro.graphs.array_adjacency import ArrayDiGraph, ArrayGraph
from repro.simulation.io import atomic_write_text

from _bench_helpers import BENCH_SEED, print_table, run_once

SIZES = [256, 1024, 4096]
SMOKE_SIZES = [64, 128]
#: the BFS closure oracle is O(n·m) Python; past this n it is minutes-slow.
MAX_NAIVE_CLOSURE_N = 1024
#: batched membership operations per timing rep.
MEMBERSHIP_BATCH = 100_000
#: predicate evaluations per timing rep (one per simulated round).
PREDICATE_CALLS = 2_000

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"


def _best_of(fn, reps: int = 3) -> float:
    """Best-of-``reps`` wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _random_digraph(n: int, rng: np.random.Generator) -> DynamicDiGraph:
    """A random digraph with out-degree ~4 (a cycle plus random chords)."""
    g = DynamicDiGraph(n)
    for u in range(n):
        g.add_edge(u, (u + 1) % n)
    us = rng.integers(0, n, size=3 * n)
    vs = rng.integers(0, n, size=3 * n)
    g.add_edges_batch(list(zip(us.tolist(), vs.tolist())))
    return g


def _measure_membership(n: int, rng: np.random.Generator) -> dict:
    """Batched membership get/set: bool matrix vs packed rows."""
    us = rng.integers(0, n, size=MEMBERSHIP_BATCH)
    vs = rng.integers(0, n, size=MEMBERSHIP_BATCH)
    mat = np.zeros((n, n), dtype=bool)
    bits = bitset.zeros(n, n)
    get_bool_s = _best_of(lambda: mat[us, vs])
    get_bits_s = _best_of(lambda: bitset.get_bits(bits, us, vs))

    def set_bool():
        mat[us, vs] = True

    set_bool_s = _best_of(set_bool)
    set_bits_s = _best_of(lambda: bitset.set_bits(bits, us, vs))
    return {
        "get_bool_s": get_bool_s,
        "get_bits_s": get_bits_s,
        "set_bool_s": set_bool_s,
        "set_bits_s": set_bits_s,
        "bool_bytes": int(mat.nbytes),
        "bits_bytes": int(bits.nbytes),
        "memory_ratio": mat.nbytes / bits.nbytes,
    }


def _measure_closure(n: int, rng: np.random.Generator) -> dict:
    """All-pairs closure: Warshall bitset kernel vs per-node Python BFS."""
    g = _random_digraph(n, rng)
    ga = ArrayDiGraph.from_graph(g)
    bits_s = _best_of(lambda: closure.reachability_bits(ga), reps=2)
    row = {"closure_bits_s": bits_s, "closure_bfs_s": None, "closure_speedup": None}
    if n <= MAX_NAIVE_CLOSURE_N:
        bfs_s = _best_of(lambda: closure.reachability_matrix_bfs(g), reps=1)
        row["closure_bfs_s"] = bfs_s
        row["closure_speedup"] = bfs_s / bits_s
        # Both must agree, or the speedup is meaningless.
        assert np.array_equal(
            closure.reachability_matrix(ga), closure.reachability_matrix_bfs(g)
        )
    return row


def _measure_convergence_check(n: int) -> dict:
    """Per-round min-degree predicate: recompute-style vs incremental cache."""
    proc = PushDiscovery(gen.cycle_graph(n), rng=BENCH_SEED, backend="array")
    for _ in range(5):
        proc.step()
    graph = proc.graph
    threshold = n - 1

    def recompute_style():
        for _ in range(PREDICATE_CALLS):
            bool(int(graph.degrees().min()) >= threshold)

    def cached_style():
        for _ in range(PREDICATE_CALLS):
            bool(proc.cached_min_degree() >= threshold)

    old_s = _best_of(recompute_style)
    new_s = _best_of(cached_style)
    assert int(graph.degrees().min()) == proc.cached_min_degree()
    return {
        "convergence_old_s": old_s,
        "convergence_cached_s": new_s,
        "convergence_speedup": old_s / new_s,
    }


def test_bitset_kernel_microbench(benchmark, smoke):
    """Membership / closure / convergence kernels vs their pre-PR2 baselines."""
    sizes = SMOKE_SIZES if smoke else SIZES

    def measure():
        results = {}
        for n in sizes:
            rng = np.random.default_rng(BENCH_SEED + n)
            row = {"n": n}
            row.update(_measure_membership(n, rng))
            row.update(_measure_closure(n, rng))
            row.update(_measure_convergence_check(n))
            results[n] = row
        return results

    results = run_once(benchmark, measure)
    rows = [
        {
            "n": r["n"],
            "mem_ratio": r["memory_ratio"],
            "get_bool_ms": r["get_bool_s"] * 1e3,
            "get_bits_ms": r["get_bits_s"] * 1e3,
            "closure_bfs_s": r["closure_bfs_s"] if r["closure_bfs_s"] is not None else "-",
            "closure_bits_s": r["closure_bits_s"],
            "closure_x": r["closure_speedup"] if r["closure_speedup"] is not None else "-",
            "convergence_x": r["convergence_speedup"],
        }
        for r in results.values()
    ]
    print_table("PR2 bitset kernel microbenchmarks", rows)

    for r in results.values():
        # The packed matrix must be ~8x smaller at every size (exact up to
        # the <=63-bit padding of the last word per row).
        assert r["memory_ratio"] > 7.5 or r["n"] % 64 != 0

    if smoke:
        return
    snapshot = {
        "pr": 2,
        "seed": BENCH_SEED,
        "sizes": sizes,
        "membership_batch": MEMBERSHIP_BATCH,
        "predicate_calls": PREDICATE_CALLS,
        "results": {str(n): results[n] for n in sizes},
    }
    atomic_write_text(RESULTS_PATH, json.dumps(snapshot, indent=2) + "\n")
    print(f"snapshot written to {RESULTS_PATH}")
    # Acceptance: >=2x on the closure and convergence kernels at n=1024,
    # ~8x membership memory reduction.
    at_1024 = results[1024]
    assert at_1024["closure_speedup"] >= 2.0
    assert at_1024["convergence_speedup"] >= 2.0
    assert at_1024["memory_ratio"] >= 7.5


def test_membership_scaling_vs_bool(benchmark, smoke):
    """End-to-end sanity: an ArrayGraph filled to completeness stays packed."""
    n = 128 if smoke else 1024

    def build():
        g = ArrayGraph(n)
        us, vs = np.triu_indices(n, k=1)
        g.add_edges_batch_arrays(us.astype(np.int64), vs.astype(np.int64))
        return g

    g = run_once(benchmark, build)
    assert g.is_complete()
    bool_bytes = n * n  # one byte per pair in the old bool matrix
    print(
        f"\ncomplete ArrayGraph n={n}: membership {g.membership_nbytes()} B "
        f"vs bool-matrix {bool_bytes} B ({bool_bytes / g.membership_nbytes():.1f}x)"
    )
    assert g.membership_nbytes() * 8 == bool_bytes  # n²/8 bytes exactly when 64 | n
