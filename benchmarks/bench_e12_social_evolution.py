"""E12 — social-network evolution: diameter, clustering, and k-hop neighbourhood growth.

The paper's Applications section argues the analysis predicts how
second/third-degree neighbourhood sizes, diameter, and clustering evolve as
members of a decentralised social network keep discovering contacts.  This
benchmark regenerates those time series for the push and pull processes on
scale-free and small-world starting networks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.social.evolution import simulate_social_evolution

from _bench_helpers import BENCH_SEED, print_table, run_once

N = 96
ROUNDS = 120
EVERY = 30


def _host(kind: str):
    rng = np.random.default_rng(BENCH_SEED)
    if kind == "barabasi_albert":
        return gen.barabasi_albert_graph(N, 2, rng)
    return gen.watts_strogatz_graph(N, 4, 0.1, rng)


@pytest.mark.parametrize("process", ["push", "pull"])
@pytest.mark.parametrize("family", ["barabasi_albert", "watts_strogatz"])
def test_e12_evolution_series(benchmark, process, family):
    """Edges and clustering rise, diameter falls, 2nd/3rd-degree neighbourhoods swell then shrink."""
    snaps = run_once(
        benchmark,
        simulate_social_evolution,
        _host(family),
        process=process,
        rounds=ROUNDS,
        every=EVERY,
        seed=BENCH_SEED,
        probe_nodes=16,
    )
    rows = [
        {
            "round": s.round_index,
            "edges": s.num_edges,
            "mean_degree": s.mean_degree,
            "diameter": -1 if s.diameter is None else s.diameter,
            "clustering": s.average_clustering,
            "2nd_degree": s.mean_second_degree,
            "3rd_degree": s.mean_third_degree,
        }
        for s in snaps
    ]
    print_table(f"E12 social evolution ({process} on {family}, n={N})", rows)
    first, last = snaps[0], snaps[-1]
    assert last.num_edges > first.num_edges
    assert last.mean_degree > first.mean_degree
    # Direct contacts eventually absorb the 2-hop neighbourhood: by the end
    # of the run the first-degree neighbourhood dominates the second.
    assert last.mean_degree > last.mean_second_degree or last.num_edges == N * (N - 1) // 2
    if first.diameter is not None and last.diameter is not None:
        assert last.diameter <= first.diameter
