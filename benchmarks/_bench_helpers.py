"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md §4 (E1…E12) and
prints the rows/series the reproduction reports in EXPERIMENTS.md.  The
``benchmark`` fixture from pytest-benchmark times the measurement itself;
each measurement runs exactly once per benchmark (``pedantic`` with one
round) because the workloads are stochastic simulations, not microkernels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: root seed shared by every benchmark so EXPERIMENTS.md is regenerable bit-for-bit.
BENCH_SEED = 20120614


def print_table(
    title: str, rows: Sequence[Dict[str, object]], columns: Optional[List[str]] = None
) -> None:
    """Print an aligned results table under a banner (captured with ``-s`` / on failure)."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    if columns is None:
        columns = list(rows[0].keys())
    formatted = [[str(c) for c in columns]]
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            cells.append(f"{value:.4g}" if isinstance(value, float) else str(value))
        formatted.append(cells)
    widths = [max(len(r[i]) for r in formatted) for i in range(len(columns))]
    for r in formatted:
        print("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def trial_count(smoke: bool, full: int, smoke_cap: int = 1) -> int:
    """Trials for one measurement: ``full`` normally, capped under ``--smoke``.

    Every benchmark that averages over repeated seeded runs must route its
    trial count through here so the CI smoke pass stays seconds-sized.
    """
    return min(full, smoke_cap) if smoke else full
