"""PR7 — checkpoint overhead and crash-recovery latency (``BENCH_PR7.json``).

Prices the crash-tolerance substrate added in PR7:

* **snapshot overhead** — one full Name Dropper convergence run on a
  cycle (array backend, n = 1024) without checkpointing vs the same run
  with ``checkpoint_every=10``.  Name Dropper's payload-heavy rounds
  (neighbor-list gossip) are the realistic case for checkpointing long
  trials, and the overhead budget is < 10% at this cadence — the
  acceptance bar for shipping periodic snapshots by default in sweeps.
  Both runs must converge to identical rounds/edges (checkpointing is
  observationally free).
* **single-snapshot cost** — best-of-reps wall milliseconds for one
  ``save_checkpoint`` of a mid-run process (the marginal cost a caller
  pays per ``checkpoint_every`` rounds).
* **recovery latency** — simulate a mid-run kill by abandoning the
  checkpointed run at its last snapshot, then time (a) ``load_checkpoint``
  + ``restore_process`` (the restart-to-ready gap) and (b) the resumed
  tail run to convergence.  The resumed run must reproduce the
  uninterrupted run's rounds and edge count exactly — recovery is the
  draw-for-draw contract from ``tests/test_checkpoint.py``, just priced.

Results are printed and written to ``BENCH_PR7.json`` at the repo root
(skipped under ``--smoke`` so CI never overwrites the recorded snapshot).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.graphs import generators as gen
from repro.simulation.checkpoint import (
    latest_checkpoint,
    load_checkpoint,
    restore_process,
    resume_from_checkpoint,
    save_checkpoint,
)
from repro.simulation.engine import make_process, measure_convergence_rounds
from repro.simulation.io import atomic_write_text

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count

PROCESS = "name_dropper"
FAMILY = "cycle"
N = 1024
SMOKE_N = 256
CHECKPOINT_EVERY = 10
SNAPSHOT_WARMUP_ROUNDS = 12  # mid-run state for the single-snapshot timing

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"


def _fresh_graph(n: int):
    return gen.make_family(FAMILY, n, np.random.default_rng(BENCH_SEED))


def _time_run(n: int, reps: int, checkpoint_dir=None) -> dict:
    """Best-of-``reps`` wall seconds for one full convergence run."""
    best = float("inf")
    rounds = edges = 0
    for _ in range(reps):
        start = time.perf_counter()
        result = measure_convergence_rounds(
            PROCESS,
            _fresh_graph(n),
            rng=np.random.default_rng(BENCH_SEED),
            backend="array",
            copy_graph=False,
            checkpoint_every=CHECKPOINT_EVERY if checkpoint_dir else 0,
            checkpoint_dir=checkpoint_dir,
        )
        best = min(best, time.perf_counter() - start)
        rounds, edges = result.rounds, result.total_edges_added
    return {"seconds": best, "rounds": rounds, "edges": edges}


def _time_single_snapshot(n: int, reps: int, out_dir: Path) -> float:
    """Best-of-``reps`` milliseconds for one mid-run ``save_checkpoint``."""
    process = make_process(
        PROCESS, _fresh_graph(n), rng=np.random.default_rng(BENCH_SEED), backend="array"
    )
    process.run(max_rounds=SNAPSHOT_WARMUP_ROUNDS)
    best = float("inf")
    for rep in range(reps):
        start = time.perf_counter()
        save_checkpoint(process, out_dir / f"single_{rep}")
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def _time_recovery(checkpoint_dir: Path, reps: int) -> dict:
    """Restore-to-ready and resumed-tail wall times from the last snapshot."""
    latest = latest_checkpoint(checkpoint_dir)
    restore_ms = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        restore_process(load_checkpoint(latest))
        restore_ms = min(restore_ms, (time.perf_counter() - start) * 1e3)

    start = time.perf_counter()
    result = resume_from_checkpoint(latest)
    resume_seconds = time.perf_counter() - start
    return {
        "resumed_from_round": load_checkpoint(latest).round_index,
        "restore_ms": restore_ms,
        "resume_seconds": resume_seconds,
        "rounds": result.rounds,
        "edges": result.total_edges_added,
    }


def test_checkpoint_overhead_and_recovery(benchmark, smoke, tmp_path):
    """Snapshot overhead vs a clean run, plus crash-recovery latency."""
    n = SMOKE_N if smoke else N
    reps = trial_count(smoke, 3)
    checkpoint_dir = tmp_path / "snapshots"

    def measure():
        base = _time_run(n, reps)
        timed = _time_run(n, reps, checkpoint_dir=checkpoint_dir)
        # Checkpointing must be observationally free.
        assert timed["rounds"] == base["rounds"]
        assert timed["edges"] == base["edges"]
        overhead = timed["seconds"] / base["seconds"] - 1.0
        snapshots = len(list(checkpoint_dir.glob("round_*.json")))
        snapshot_ms = _time_single_snapshot(n, reps, tmp_path / "single")

        recovery = _time_recovery(checkpoint_dir, reps)
        # The resumed run replays the uninterrupted trajectory exactly.
        assert recovery["rounds"] == base["rounds"]
        assert recovery["edges"] == base["edges"]
        return {
            "runs": [
                {"mode": "clean", **base},
                {
                    "mode": f"checkpoint_every={CHECKPOINT_EVERY}",
                    **timed,
                    "snapshots": snapshots,
                    "overhead_fraction": overhead,
                },
            ],
            "snapshot_ms": snapshot_ms,
            "recovery": recovery,
        }

    results = run_once(benchmark, measure)
    print_table(
        f"PR7 checkpoint overhead ({PROCESS} on {FAMILY}, n={n}, array backend)",
        results["runs"],
        ["mode", "seconds", "rounds", "edges", "snapshots", "overhead_fraction"],
    )
    print_table(
        "PR7 crash recovery (resume from last snapshot)",
        [results["recovery"]],
        ["resumed_from_round", "restore_ms", "resume_seconds", "rounds", "edges"],
    )
    print(f"single snapshot: {results['snapshot_ms']:.2f} ms")

    if smoke:
        return
    overhead = results["runs"][1]["overhead_fraction"]
    assert overhead < 0.10, f"checkpoint overhead {overhead:.1%} exceeds the 10% budget"
    snapshot = {
        "pr": 7,
        "seed": BENCH_SEED,
        "process": PROCESS,
        "family": FAMILY,
        "n": n,
        "checkpoint_every": CHECKPOINT_EVERY,
        "cpus": os.cpu_count(),
        "runs": results["runs"],
        "snapshot_ms": results["snapshot_ms"],
        "recovery": results["recovery"],
    }
    atomic_write_text(RESULTS_PATH, json.dumps(snapshot, indent=2) + "\n")
    print(f"snapshot written to {RESULTS_PATH}")
