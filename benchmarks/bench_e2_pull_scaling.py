"""E2 — Theorem 12: pull (two-hop walk) upper bound O(n log² n) on undirected graphs.

Same sweep as E1 but for the pull process, plus a head-to-head push-vs-pull
series on the cycle family (the paper proves the same bound for both).
Both graph backends are exercised (seed-identical rounds, different
wall-clock); ``--smoke`` shrinks the sweep for CI.
"""

from __future__ import annotations

import pytest

from repro.analysis.scaling import measure_scaling
from repro.simulation import bounds, stats

from _bench_helpers import BENCH_SEED, print_table, run_once

SIZES = [16, 32, 64, 96]
SMOKE_SIZES = [8, 12]
FAMILIES = ["cycle", "path", "star", "erdos_renyi", "barabasi_albert"]
BACKENDS = ["list", "array"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("family", FAMILIES)
def test_e2_pull_scaling(benchmark, family, backend, smoke):
    """Pull convergence rounds vs n for one family, with the Theorem-12 fit."""
    sizes = SMOKE_SIZES if smoke else SIZES
    trials = 1 if smoke else 3
    measurement = run_once(
        benchmark,
        measure_scaling,
        "pull",
        family,
        sizes=sizes,
        trials=trials,
        seed=BENCH_SEED,
        poly_exponent=1.0,
        backend=backend,
    )
    print_table(f"E2 pull scaling on {family} [{backend}]", measurement.as_rows())
    fit = measurement.power_log_fit
    print(
        f"fit: rounds ~ {fit.coefficient:.3g} * n * (ln n)^{fit.log_exponent:.2f} "
        f"(R^2={fit.r_squared:.3f}); pure power-law exponent "
        f"{measurement.power_fit.exponent:.2f}"
    )
    if smoke:
        return  # tiny sizes cannot support the asymptotic shape assertions
    ok, info = stats.bounded_ratio(
        sizes, measurement.mean_rounds, bounds.n_log2_n, spread_tolerance=10.0
    )
    assert ok, f"rounds drifted away from the n log^2 n shape: {info}"
    assert 0.9 < measurement.power_fit.exponent < 2.0


def test_e2_push_vs_pull_same_bound(benchmark, smoke):
    """Push and pull stay within a small constant factor of each other (same theorem shape)."""
    sizes = SMOKE_SIZES if smoke else SIZES
    trials = 1 if smoke else 3

    def measure_both():
        push = measure_scaling(
            "push", "cycle", sizes=sizes, trials=trials, seed=BENCH_SEED, backend="array"
        )
        pull = measure_scaling(
            "pull", "cycle", sizes=sizes, trials=trials, seed=BENCH_SEED, backend="array"
        )
        return push, pull

    push, pull = run_once(benchmark, measure_both)
    rows = [
        {
            "n": n,
            "push_rounds": pm,
            "pull_rounds": lm,
            "pull/push": lm / pm,
        }
        for n, pm, lm in zip(sizes, push.mean_rounds, pull.mean_rounds)
    ]
    print_table("E2 push vs pull on cycles [array]", rows)
    if smoke:
        return
    assert all(0.2 < r["pull/push"] < 5.0 for r in rows)
