"""E2 — Theorem 12: pull (two-hop walk) upper bound O(n log² n) on undirected graphs.

Same sweep as E1 but for the pull process, plus a head-to-head push-vs-pull
series on the cycle family (the paper proves the same bound for both).
"""

from __future__ import annotations

import pytest

from repro.analysis.scaling import measure_scaling
from repro.simulation import bounds, stats

from _bench_helpers import BENCH_SEED, print_table, run_once

SIZES = [16, 32, 64, 96]
FAMILIES = ["cycle", "path", "star", "erdos_renyi", "barabasi_albert"]


@pytest.mark.parametrize("family", FAMILIES)
def test_e2_pull_scaling(benchmark, family):
    """Pull convergence rounds vs n for one family, with the Theorem-12 fit."""
    measurement = run_once(
        benchmark,
        measure_scaling,
        "pull",
        family,
        sizes=SIZES,
        trials=3,
        seed=BENCH_SEED,
        poly_exponent=1.0,
    )
    print_table(f"E2 pull scaling on {family}", measurement.as_rows())
    fit = measurement.power_log_fit
    print(
        f"fit: rounds ~ {fit.coefficient:.3g} * n * (ln n)^{fit.log_exponent:.2f} "
        f"(R^2={fit.r_squared:.3f}); pure power-law exponent "
        f"{measurement.power_fit.exponent:.2f}"
    )
    ok, info = stats.bounded_ratio(
        SIZES, measurement.mean_rounds, bounds.n_log2_n, spread_tolerance=10.0
    )
    assert ok, f"rounds drifted away from the n log^2 n shape: {info}"
    assert 0.9 < measurement.power_fit.exponent < 2.0


def test_e2_push_vs_pull_same_bound(benchmark):
    """Push and pull stay within a small constant factor of each other (same theorem shape)."""

    def measure_both():
        push = measure_scaling("push", "cycle", sizes=SIZES, trials=3, seed=BENCH_SEED)
        pull = measure_scaling("pull", "cycle", sizes=SIZES, trials=3, seed=BENCH_SEED)
        return push, pull

    push, pull = run_once(benchmark, measure_both)
    rows = [
        {
            "n": n,
            "push_rounds": pm,
            "pull_rounds": lm,
            "pull/push": lm / pm,
        }
        for n, pm, lm in zip(SIZES, push.mean_rounds, pull.mean_rounds)
    ]
    print_table("E2 push vs pull on cycles", rows)
    assert all(0.2 < r["pull/push"] < 5.0 for r in rows)
