"""Benchmark-suite conftest: exposes the shared root seed as a fixture."""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from _bench_helpers import BENCH_SEED  # noqa: E402


@pytest.fixture
def bench_seed() -> int:
    """The shared root seed for all benchmark measurements."""
    return BENCH_SEED
