"""Benchmark-suite conftest: exposes the shared root seed as a fixture."""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from _bench_helpers import BENCH_SEED  # noqa: E402


def pytest_addoption(parser) -> None:
    """Register the benchmark smoke switch.

    ``--smoke`` shrinks every benchmark to one tiny configuration so CI can
    exercise the bench entry points end-to-end in seconds without paying
    for full experiment regeneration.
    """
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run benchmarks at one tiny size with a single trial (CI smoke mode)",
    )


@pytest.fixture
def bench_seed() -> int:
    """The shared root seed for all benchmark measurements."""
    return BENCH_SEED


@pytest.fixture
def smoke(request) -> bool:
    """True when the suite runs in ``--smoke`` mode."""
    return bool(request.config.getoption("--smoke"))
