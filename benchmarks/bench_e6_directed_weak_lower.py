"""E6 — Theorem 14 (lower bound): the weakly connected Ω(n² log n) construction.

Runs the directed two-hop walk on the paper's explicit weakly connected
instance (Appendix D) and reports rounds normalised by n², the Ω-shape
check being that this ratio does not collapse as n grows.
"""

from __future__ import annotations

from repro.analysis.lower_bounds import lower_bound_ratio_check
from repro.graphs import directed_generators as dgen
from repro.simulation import bounds

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count

SIZES = [16, 32, 48, 64]
SMOKE_SIZES = [8, 12]


def test_e6_weakly_connected_lower_bound(benchmark, smoke):
    """The Theorem-14 instance needs rounds growing like n² (up to log factors)."""
    check = run_once(
        benchmark,
        lower_bound_ratio_check,
        "directed_pull",
        instance_factory=dgen.thm14_weak_lower_bound,
        sizes=SMOKE_SIZES if smoke else SIZES,
        bound=bounds.n_squared,
        trials=trial_count(smoke, 3),
        seed=BENCH_SEED,
        min_fraction_of_first=0.1,
    )
    rows = [
        {"n": n, "mean_rounds": r, "rounds/n^2": ratio}
        for n, r, ratio in zip(check.sizes, check.mean_rounds, check.ratios)
    ]
    print_table("E6 weakly connected lower-bound instance", rows)
    print(f"pure power-law exponent: {check.power_fit_exponent:.2f}")
    if smoke:
        return  # tiny sizes / single trials cannot support the shape assertions
    # Clearly superlinear growth, consistent with the quadratic lower bound.
    assert check.power_fit_exponent > 1.4
    assert check.non_vanishing


def test_e6_only_shortcut_edges_are_missing(benchmark):
    """Sanity series: the construction's closure deficit is exactly the n/4 shortcuts."""

    def measure():
        rows = []
        for n in SIZES:
            g = dgen.thm14_weak_lower_bound(n)
            missing = dgen.thm14_missing_edges(n)
            rows.append({"n": n, "initial_edges": g.number_of_edges(), "missing_shortcuts": len(missing)})
        return rows

    rows = run_once(benchmark, measure)
    print_table("E6 instance structure", rows)
    for row, n in zip(rows, SIZES):
        assert row["missing_shortcuts"] == n // 4
