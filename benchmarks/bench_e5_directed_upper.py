"""E5 — Theorem 14 (upper bound): directed two-hop walk terminates in O(n² log n).

Sweeps the directed two-hop walk over strongly connected digraph families
and fits the growth law with the polynomial exponent fixed at 2.  Both
graph backends are exercised (seed-identical rounds); ``--smoke`` shrinks
the sweep for CI.
"""

from __future__ import annotations

import pytest

from repro.analysis.scaling import measure_scaling
from repro.simulation import bounds, stats

from _bench_helpers import BENCH_SEED, print_table, run_once

SIZES = [8, 12, 16, 24]
SMOKE_SIZES = [6, 8]
FAMILIES = ["directed_cycle", "random_strong", "bidirected_path"]
BACKENDS = ["list", "array"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("family", FAMILIES)
def test_e5_directed_scaling(benchmark, family, backend, smoke):
    """Directed two-hop walk rounds vs n, checked against the n² log n envelope."""
    sizes = SMOKE_SIZES if smoke else SIZES
    trials = 1 if smoke else 3
    measurement = run_once(
        benchmark,
        measure_scaling,
        "directed_pull",
        family,
        sizes=sizes,
        trials=trials,
        seed=BENCH_SEED,
        directed=True,
        poly_exponent=2.0,
        backend=backend,
    )
    rows = [
        {
            "n": n,
            "rounds_mean": mean,
            "rounds/(n^2 ln n)": mean / bounds.n_squared_log_n(n),
            "rounds/(n ln^2 n)": mean / bounds.n_log2_n(n),
        }
        for n, mean in zip(sizes, measurement.mean_rounds)
    ]
    print_table(f"E5 directed two-hop walk on {family} [{backend}]", rows)
    print(f"pure power-law exponent: {measurement.power_fit.exponent:.2f}")
    if smoke:
        return  # tiny sizes cannot support the asymptotic shape assertions
    # Upper-bound shape: the rounds never exceed a small constant times n^2 log n.
    ratios = measurement.normalized_by(bounds.n_squared_log_n)
    assert (ratios < 5.0).all()
    assert measurement.power_fit.exponent > 0.5
