"""E1 — Theorem 8: push (triangulation) upper bound O(n log² n) on undirected graphs.

Regenerates the convergence-round scaling series for the push process over
several graph families and reports the fitted growth law plus the
rounds / (n ln² n) ratios that must stay bounded.
"""

from __future__ import annotations

import pytest

from repro.analysis.scaling import measure_scaling
from repro.simulation import bounds, stats

from _bench_helpers import BENCH_SEED, print_table, run_once

SIZES = [16, 32, 64, 96]
FAMILIES = ["cycle", "path", "star", "erdos_renyi", "barabasi_albert"]


@pytest.mark.parametrize("family", FAMILIES)
def test_e1_push_scaling(benchmark, family):
    """Push convergence rounds vs n for one family, with the Theorem-8 fit."""
    measurement = run_once(
        benchmark,
        measure_scaling,
        "push",
        family,
        sizes=SIZES,
        trials=3,
        seed=BENCH_SEED,
        poly_exponent=1.0,
    )
    print_table(f"E1 push scaling on {family}", measurement.as_rows())
    fit = measurement.power_log_fit
    print(
        f"fit: rounds ~ {fit.coefficient:.3g} * n * (ln n)^{fit.log_exponent:.2f} "
        f"(R^2={fit.r_squared:.3f}); pure power-law exponent "
        f"{measurement.power_fit.exponent:.2f}"
    )
    # Shape assertions (paper: between n log n and n log^2 n).
    ok, info = stats.bounded_ratio(
        SIZES, measurement.mean_rounds, bounds.n_log2_n, spread_tolerance=10.0
    )
    assert ok, f"rounds drifted away from the n log^2 n shape: {info}"
    assert 0.9 < measurement.power_fit.exponent < 2.0
