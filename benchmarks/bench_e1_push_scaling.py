"""E1 — Theorem 8: push (triangulation) upper bound O(n log² n) on undirected graphs.

Regenerates the convergence-round scaling series for the push process over
several graph families and reports the fitted growth law plus the
rounds / (n ln² n) ratios that must stay bounded.  Every sweep runs on
both graph backends (the measured rounds are seed-identical; only the
wall-clock differs), and a dedicated benchmark times list vs array at the
largest configured n to pin the vectorization speedup.

``--smoke`` shrinks everything to one tiny configuration for CI.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.scaling import measure_scaling
from repro.core.push import PushDiscovery
from repro.graphs import generators
from repro.graphs.array_adjacency import as_backend
from repro.simulation import bounds, stats

from _bench_helpers import BENCH_SEED, print_table, run_once

SIZES = [16, 32, 64, 96]
SMOKE_SIZES = [8, 12]
#: sizes for the backend shoot-out; the largest is where vectorization pays.
SPEEDUP_SIZES = [96, 192, 384]
FAMILIES = ["cycle", "path", "star", "erdos_renyi", "barabasi_albert"]
BACKENDS = ["list", "array"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("family", FAMILIES)
def test_e1_push_scaling(benchmark, family, backend, smoke):
    """Push convergence rounds vs n for one family, with the Theorem-8 fit."""
    sizes = SMOKE_SIZES if smoke else SIZES
    trials = 1 if smoke else 3
    measurement = run_once(
        benchmark,
        measure_scaling,
        "push",
        family,
        sizes=sizes,
        trials=trials,
        seed=BENCH_SEED,
        poly_exponent=1.0,
        backend=backend,
    )
    print_table(f"E1 push scaling on {family} [{backend}]", measurement.as_rows())
    fit = measurement.power_log_fit
    print(
        f"fit: rounds ~ {fit.coefficient:.3g} * n * (ln n)^{fit.log_exponent:.2f} "
        f"(R^2={fit.r_squared:.3f}); pure power-law exponent "
        f"{measurement.power_fit.exponent:.2f}"
    )
    if smoke:
        return  # tiny sizes cannot support the asymptotic shape assertions
    # Shape assertions (paper: between n log n and n log^2 n).
    ok, info = stats.bounded_ratio(
        sizes, measurement.mean_rounds, bounds.n_log2_n, spread_tolerance=10.0
    )
    assert ok, f"rounds drifted away from the n log^2 n shape: {info}"
    assert 0.9 < measurement.power_fit.exponent < 2.0


def test_e1_backend_speedup(benchmark, smoke):
    """List vs array wall-clock at the largest configured n (seed-identical runs).

    The acceptance bar for the array backend is a >=3x speedup at the top
    size (measured ~3.9x on the reference machine); the assertion uses a
    noise-tolerant 2x so shared CI runners do not flake, and prints the
    measured ratio for the record.
    """
    n = 24 if smoke else SPEEDUP_SIZES[-1]
    base = generators.cycle_graph(n)

    def convergence_seconds(backend: str):
        best, rounds = float("inf"), -1
        for _ in range(1 if smoke else 2):
            graph = as_backend(base.copy(), backend)
            process = PushDiscovery(graph, rng=BENCH_SEED)
            start = time.perf_counter()
            result = process.run_to_convergence()
            best = min(best, time.perf_counter() - start)
            rounds = result.rounds
        return best, rounds

    def shootout():
        return {backend: convergence_seconds(backend) for backend in BACKENDS}

    timings = run_once(benchmark, shootout)
    (list_s, list_rounds) = timings["list"]
    (array_s, array_rounds) = timings["array"]
    speedup = list_s / array_s
    print(
        f"\n=== E1 backend shoot-out (push on cycle, n={n}) ===\n"
        f"list:  {list_s * 1e3:8.1f} ms  ({list_rounds} rounds)\n"
        f"array: {array_s * 1e3:8.1f} ms  ({array_rounds} rounds)\n"
        f"speedup: {speedup:.2f}x"
    )
    assert list_rounds == array_rounds, "backends must converge in identical rounds"
    if not smoke:
        assert speedup >= 2.0, f"array backend only {speedup:.2f}x faster at n={n}"
