"""E9 — subset/group discovery: O(k log² k) rounds, independent of the host size.

The paper's corollary for social groups: a connected induced subgraph of k
nodes completes among themselves in O(k log² k) rounds regardless of the
host network.  The benchmark sweeps the group size k inside a fixed host
and sweeps the host size at a fixed k.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.social.group_discovery import discover_group
from repro.simulation import stats

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count

HOST_N = 256
GROUP_SIZES = [8, 16, 32, 48]
HOST_SIZES = [64, 128, 256]
FIXED_K = 16


@pytest.mark.parametrize("process", ["push", "pull"])
def test_e9_rounds_scale_with_group_size(benchmark, process, smoke):
    """Rounds grow with k roughly like k log² k while the host stays fixed."""

    host_n = 64 if smoke else HOST_N
    group_sizes = GROUP_SIZES[:2] if smoke else GROUP_SIZES

    def measure():
        host = gen.barabasi_albert_graph(host_n, 3, np.random.default_rng(BENCH_SEED))
        rows = []
        for k in group_sizes:
            trials = [
                discover_group(host, k=k, process=process, seed=BENCH_SEED + t).rounds
                for t in range(trial_count(smoke, 3))
            ]
            rows.append({"k": k, "rounds_mean": float(np.mean(trials))})
        return rows

    rows = run_once(benchmark, measure)
    for row in rows:
        k = row["k"]
        row["rounds/(k ln^2 k)"] = row["rounds_mean"] / (k * math.log(k) ** 2)
    print_table(f"E9 group discovery vs group size ({process}, host n={host_n})", rows)
    ks = [row["k"] for row in rows]
    means = [row["rounds_mean"] for row in rows]
    fit = stats.fit_power_law(ks, means)
    print(f"pure power-law exponent in k: {fit.exponent:.2f}")
    if smoke:
        return  # two tiny group sizes cannot support the growth-shape assertions
    # Growth is governed by k (roughly linear-with-logs), not by the host size.
    assert 0.7 < fit.exponent < 2.2
    assert all(row["rounds/(k ln^2 k)"] < 5.0 for row in rows)


def test_e9_rounds_independent_of_host_size(benchmark, smoke):
    """With k fixed, growing the host network does not change the convergence scale."""

    host_sizes = HOST_SIZES[:2] if smoke else HOST_SIZES

    def measure():
        rows = []
        for host_n in host_sizes:
            host = gen.barabasi_albert_graph(host_n, 3, np.random.default_rng(BENCH_SEED))
            trials = [
                discover_group(host, k=FIXED_K, process="push", seed=BENCH_SEED + t).rounds
                for t in range(trial_count(smoke, 3))
            ]
            rows.append({"host_n": host_n, "k": FIXED_K, "rounds_mean": float(np.mean(trials))})
        return rows

    rows = run_once(benchmark, measure)
    print_table("E9 group discovery vs host size (push, k=16)", rows)
    means = [row["rounds_mean"] for row in rows]
    # Quadrupling the host changes the group's convergence time by at most ~3x
    # (it would grow ~20x if the host size governed it).
    assert max(means) / min(means) < 3.0
