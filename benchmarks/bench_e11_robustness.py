"""E11 — robustness ablations (§6 future work): failures, partial participation, sampling.

Measures how the push/pull convergence time degrades when connection
attempts fail with probability p, when only a fraction of nodes
participates per round, and (as an algorithmic ablation) when the push
process samples its two neighbours without replacement.  Also compares the
synchronous and sequential update semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import UpdateSemantics
from repro.graphs import generators as gen
from repro.simulation.engine import measure_convergence_rounds

from _bench_helpers import BENCH_SEED, print_table, run_once, trial_count

N = 48
FAILURE_PROBS = [0.0, 0.1, 0.3, 0.5]
PARTICIPATION = [1.0, 0.75, 0.5]


def _mean_rounds(process: str, n: int, trials: int = 3, **kwargs) -> float:
    rounds = []
    for t in range(trials):
        graph = gen.cycle_graph(n)
        rounds.append(
            measure_convergence_rounds(
                process, graph, rng=BENCH_SEED + t, copy_graph=False, **kwargs
            ).rounds
        )
    return float(np.mean(rounds))


@pytest.mark.parametrize("process", ["faulty_push", "faulty_pull"])
def test_e11_connection_failures(benchmark, process, smoke):
    """Convergence degrades smoothly (roughly like 1/(1-p)) as the failure probability grows."""

    trials = trial_count(smoke, 3)

    def measure():
        return [
            {
                "failure_prob": p,
                "rounds_mean": _mean_rounds(process, N, trials=trials, failure_prob=p),
            }
            for p in FAILURE_PROBS
        ]

    rows = run_once(benchmark, measure)
    baseline = rows[0]["rounds_mean"]
    for row in rows:
        row["slowdown"] = row["rounds_mean"] / baseline
    print_table(f"E11 failure-probability sweep ({process}, n={N})", rows)
    slowdowns = [row["slowdown"] for row in rows]
    assert slowdowns[-1] > 1.0  # failures cost something
    assert slowdowns[-1] < 10.0  # but degrade gracefully, not catastrophically
    assert all(s2 >= s1 * 0.7 for s1, s2 in zip(slowdowns, slowdowns[1:]))


def test_e11_partial_participation(benchmark, smoke):
    """Halving participation roughly doubles the rounds (work per round halves)."""

    trials = trial_count(smoke, 3)

    def measure():
        return [
            {
                "participation": q,
                "rounds_mean": _mean_rounds(
                    "faulty_push", N, trials=trials, participation_prob=q
                ),
            }
            for q in PARTICIPATION
        ]

    rows = run_once(benchmark, measure)
    baseline = rows[0]["rounds_mean"]
    for row in rows:
        row["slowdown"] = row["rounds_mean"] / baseline
    print_table(f"E11 participation sweep (push, n={N})", rows)
    assert rows[-1]["slowdown"] > 1.2
    assert rows[-1]["slowdown"] < 6.0


def test_e11_sampling_and_semantics_ablation(benchmark, smoke):
    """Design ablations: without-replacement push sampling and sequential updates."""

    trials = trial_count(smoke, 3)

    def measure():
        return [
            {"variant": "push (paper)", "rounds_mean": _mean_rounds("push", N, trials=trials)},
            {
                "variant": "push without-replacement",
                "rounds_mean": _mean_rounds("push", N, trials=trials, without_replacement=True),
            },
            {
                "variant": "push sequential updates",
                "rounds_mean": _mean_rounds(
                    "push", N, trials=trials, semantics=UpdateSemantics.SEQUENTIAL
                ),
            },
            {"variant": "pull (paper)", "rounds_mean": _mean_rounds("pull", N, trials=trials)},
            {
                "variant": "pull sequential updates",
                "rounds_mean": _mean_rounds(
                    "pull", N, trials=trials, semantics=UpdateSemantics.SEQUENTIAL
                ),
            },
        ]

    rows = run_once(benchmark, measure)
    print_table(f"E11 sampling / semantics ablation (n={N})", rows)
    by_name = {row["variant"]: row["rounds_mean"] for row in rows}
    # All variants land within a small constant factor of the paper's process.
    assert by_name["push without-replacement"] < 2.0 * by_name["push (paper)"]
    assert by_name["push sequential updates"] < 2.0 * by_name["push (paper)"]
    assert by_name["pull sequential updates"] < 2.0 * by_name["pull (paper)"]
